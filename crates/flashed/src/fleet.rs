//! A sharded FlashEd fleet with coordinated live updates.
//!
//! The paper updates one single-threaded server mid-traffic. This module
//! scales that experiment out: a [`Fleet`] runs N worker threads, each
//! owning its *own* [`vm::Process`] (guest state is thread-local; nothing
//! about the VM becomes concurrent), all pulling from one shared request
//! queue ([`ServerShared`]). A coordinator thread broadcasts a compiled
//! [`Patch`] to every worker through [`dsu_core::UpdaterRemote`] handles
//! under one of two rollout policies:
//!
//! * [`RolloutPolicy::Simultaneous`] — every worker pauses at its next
//!   update point, a barrier lines the whole fleet up, all workers apply
//!   at once, all resume. One fleet-wide service gap; no version skew.
//! * [`RolloutPolicy::Rolling`] — workers apply one at a time; while one
//!   pauses the rest keep serving, so the fleet never stops completing
//!   requests. Transient version skew; no fleet-wide gap.
//! * [`RolloutPolicy::Guarded`] — a canary worker updates first and a
//!   [`crate::guard::HealthGate`] judges every step (pause-SLO budget,
//!   error counters, completion liveness) before the patch advances; a
//!   breach holds the line or rolls every updated worker back, and the
//!   whole run leaves a [`crate::guard::RolloutReportCard`] behind.
//!
//! Workers run their updaters non-strict: a worker whose apply is rejected
//! keeps serving its old version and the failure lands in the rollout's
//! [`FleetUpdateReport`] — the rest of the fleet still rolls forward.
//! Deliberate misbehaviour for hardening tests is threaded in per worker
//! through [`WorkerOverride::fault`] (see [`crate::fault::FaultPlan`]).

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use dsu_core::{FleetUpdateReport, Patch, UpdaterRemote};
use dsu_obs::trace::{Span, SpanKind};
use dsu_obs::{Journal, Tracer};
use vm::LinkMode;

use crate::edge::{AcceptorHandle, Edge, EdgeConfig, Inbox};
use crate::fault::{crash_if_armed, CrashPoint, FaultPlan, InjectedCrash};
use crate::fs::SimFs;
use crate::guard::{BreachAction, PauseSlo, RolloutReportCard};
use crate::rollout::{Orchestrator, OrchestratorReport, RolloutPlan};
use crate::server::{Completion, ServeMode, Server, ServerShared};
use crate::telemetry::{FleetTelemetry, ServerTelemetry};

/// Per-worker deviations from the fleet-wide configuration — a fleet
/// whose workers sit on heterogeneous "hardware" (different device
/// latencies, cache sizes, concurrency windows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerOverride {
    /// Per-read device latency for this worker's filesystem copy.
    pub read_latency: Option<Duration>,
    /// Buffer-cache capacity (event-loop mode only).
    pub cache_entries: Option<usize>,
    /// In-flight request window (event-loop mode only).
    pub max_in_flight: Option<usize>,
    /// Injected misbehaviour for hardening tests: pause/gate delays take
    /// effect at this worker's update pauses, read errors at its boot.
    pub fault: FaultPlan,
}

/// Fleet configuration: size, link mode, serve mode, telemetry, and
/// optional per-worker overrides. Built fluently:
///
/// ```
/// use flashed::{EventLoopConfig, FleetConfig, ServeMode};
/// let cfg = FleetConfig::new(4)
///     .serve_mode(ServeMode::EventLoop(EventLoopConfig::default()))
///     .with_telemetry();
/// ```
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Link mode every worker boots in.
    pub link_mode: LinkMode,
    /// Serve mode every worker runs (see [`WorkerOverride`] for per-worker
    /// event-loop tuning).
    pub serve_mode: ServeMode,
    /// Whether to build a [`FleetTelemetry`] (journal + registries).
    pub telemetry: bool,
    /// Whether to build a fleet-shared span [`dsu_obs::Tracer`] (implies
    /// `telemetry`): request, update and rollout spans land in one
    /// collector, ready for latency attribution.
    pub tracing: bool,
    /// Whether each worker arms its VM's hot-path profiler at boot and
    /// publishes the collapsed-stack profile at shutdown.
    pub vm_profile: bool,
    /// Per-worker overrides, indexed by worker id; missing entries mean
    /// "no override".
    pub overrides: Vec<WorkerOverride>,
    /// How long rollouts (and [`Fleet::drain`]) wait for a worker before
    /// giving up. Hardening tests shrink this so an injected gate stall
    /// surfaces in milliseconds instead of [`ROLLOUT_DEADLINE`].
    pub rollout_deadline: Duration,
    /// Journal the workers' lifecycle events land in. `None` builds a
    /// fresh in-memory one; an [`Orchestrator`] hands every shard fleet
    /// one shared (possibly write-ahead-backed) journal so the whole
    /// staged rollout is one recoverable stream. Implies `telemetry`.
    pub journal: Option<Journal>,
    /// First worker id used for journal tags and metric labels. Shard
    /// fleets under one orchestrator get disjoint ranges so worker ids
    /// stay globally unambiguous in the shared journal.
    pub worker_base: usize,
    /// Fronts the fleet with a routed [`Edge`]: per-worker bounded
    /// inboxes fed by an acceptor thread, instead of every worker
    /// contending on the shared ingress queue. `None` keeps the legacy
    /// shared-queue pull path.
    pub edge: Option<EdgeConfig>,
    /// Runs a [`Supervisor`] thread over the fleet: dead workers are
    /// detected, failed over at the edge, and rebooted from their
    /// persisted snapshot rings (see [`FleetConfig::supervised`]).
    /// `None` (the default) keeps the pre-supervision behaviour — a dead
    /// worker stays dead until shutdown reports it.
    pub supervision: Option<SupervisorConfig>,
}

impl FleetConfig {
    /// A `workers`-strong updateable, blocking, untelemetered fleet.
    pub fn new(workers: usize) -> FleetConfig {
        FleetConfig {
            workers,
            link_mode: LinkMode::Updateable,
            serve_mode: ServeMode::Blocking,
            telemetry: false,
            tracing: false,
            vm_profile: false,
            overrides: Vec::new(),
            rollout_deadline: ROLLOUT_DEADLINE,
            journal: None,
            worker_base: 0,
            edge: None,
            supervision: None,
        }
    }

    /// Supervises the fleet with default knobs: dead workers are failed
    /// over at the edge and rebooted from their persisted snapshot rings,
    /// with exponential backoff and a bounded restart budget.
    pub fn supervised(self) -> FleetConfig {
        self.with_supervision(SupervisorConfig::default())
    }

    /// Supervises the fleet with explicit knobs.
    pub fn with_supervision(mut self, cfg: SupervisorConfig) -> FleetConfig {
        self.supervision = Some(cfg);
        self
    }

    /// Fronts the fleet with a routed edge (see [`EdgeConfig`]): workers
    /// pull from per-worker bounded inboxes, an acceptor routes the
    /// shared ingress queue, and overflow sheds with a typed error.
    pub fn with_edge(mut self, edge: EdgeConfig) -> FleetConfig {
        self.edge = Some(edge);
        self
    }

    /// Routes lifecycle events into a caller-supplied `journal` (shared
    /// across fleets, possibly write-ahead-backed) instead of a fresh
    /// in-memory one. Implies [`FleetConfig::with_telemetry`].
    pub fn with_journal(mut self, journal: Journal) -> FleetConfig {
        self.telemetry = true;
        self.journal = Some(journal);
        self
    }

    /// Offsets this fleet's worker ids (journal tags, metric labels) by
    /// `base`, so shard fleets in one orchestrator keep globally unique
    /// worker ids.
    pub fn worker_base(mut self, base: usize) -> FleetConfig {
        self.worker_base = base;
        self
    }

    /// Sets the rollout/drain deadline.
    pub fn rollout_deadline(mut self, deadline: Duration) -> FleetConfig {
        self.rollout_deadline = deadline;
        self
    }

    /// Sets the link mode.
    pub fn link_mode(mut self, mode: LinkMode) -> FleetConfig {
        self.link_mode = mode;
        self
    }

    /// Sets the serve mode.
    pub fn serve_mode(mut self, mode: ServeMode) -> FleetConfig {
        self.serve_mode = mode;
        self
    }

    /// Enables fleet telemetry.
    pub fn with_telemetry(mut self) -> FleetConfig {
        self.telemetry = true;
        self
    }

    /// Enables causal tracing (and, with it, telemetry): every worker's
    /// server emits request spans, every updater emits update/phase
    /// spans, and rollouts stamp a fleet-wide root span — all into one
    /// shared [`dsu_obs::Tracer`].
    pub fn with_tracing(mut self) -> FleetConfig {
        self.telemetry = true;
        self.tracing = true;
        self
    }

    /// Arms each worker's VM hot-path profiler at boot; the collapsed
    /// profile is published into the worker's telemetry at shutdown.
    pub fn with_vm_profile(mut self) -> FleetConfig {
        self.vm_profile = true;
        self
    }

    /// Overrides worker `worker`'s configuration.
    pub fn override_worker(mut self, worker: usize, ov: WorkerOverride) -> FleetConfig {
        if self.overrides.len() <= worker {
            self.overrides.resize(worker + 1, WorkerOverride::default());
        }
        self.overrides[worker] = ov;
        self
    }

    fn override_for(&self, worker: usize) -> WorkerOverride {
        self.overrides.get(worker).copied().unwrap_or_default()
    }
}

/// What went wrong inside one worker.
#[derive(Debug)]
pub enum WorkerFailure {
    /// The worker thread could not be spawned.
    Spawn(String),
    /// The worker's server failed to boot (compile/link).
    Boot(String),
    /// The worker thread died before reporting its boot outcome.
    BootChannel,
    /// The guest trapped (or a strict-mode update failed) while serving.
    Guest(String),
    /// The worker thread panicked.
    Panic,
    /// The worker thread was killed by injected crash fault at the given
    /// point (see [`crate::fault::FaultPlan::crash_at`]) — told apart
    /// from an accidental [`WorkerFailure::Panic`] by the typed panic
    /// payload.
    Crashed(CrashPoint),
    /// The supervisor exhausted its restart budget for this worker and
    /// degraded the fleet instead of restart-looping; the worker stays
    /// down and the edge routes around it.
    GaveUp {
        /// Restarts attempted before giving up.
        restarts: u64,
    },
}

impl fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerFailure::Spawn(e) => write!(f, "thread spawn failed: {e}"),
            WorkerFailure::Boot(e) => write!(f, "failed to boot: {e}"),
            WorkerFailure::BootChannel => write!(f, "died during boot"),
            WorkerFailure::Guest(e) => write!(f, "{e}"),
            WorkerFailure::Panic => write!(f, "panicked"),
            WorkerFailure::Crashed(point) => write!(f, "crashed ({point})"),
            WorkerFailure::GaveUp { restarts } => {
                write!(f, "supervisor gave up after {restarts} restarts")
            }
        }
    }
}

/// Fleet operation failures, carrying the worker they originate from
/// (where one does) and the underlying cause.
#[derive(Debug)]
pub enum FleetError {
    /// A worker failed — at boot, while serving, or at shutdown.
    Worker {
        /// The failing worker's index.
        worker: usize,
        /// What happened to it.
        cause: WorkerFailure,
    },
    /// [`Fleet::drain`] timed out with requests still outstanding. Now
    /// that queues are sharded, the stall is attributed per queue: the
    /// shared ingress count plus each worker inbox's depth, so a single
    /// wedged worker is identifiable from the error alone.
    QueueStall {
        /// Requests still in the shared ingress queue at the deadline.
        ingress: usize,
        /// Requests still queued in each worker's edge inbox, in worker
        /// order. Empty for a shared-queue fleet (no per-worker queues).
        per_worker: Vec<usize>,
        /// Completions observed at the deadline.
        completed: usize,
        /// Completions the caller expected.
        expected: usize,
    },
    /// A rollout gave up waiting for a worker to reach an update boundary.
    RolloutStalled {
        /// The worker that never resolved its patch.
        worker: usize,
    },
    /// The awaited worker died and its supervisor rebooted it mid-wait:
    /// the patch that was in flight was withdrawn (`Aborted`) and the
    /// worker now runs a fresh incarnation at its pre-crash version. The
    /// rollout driver catches this and re-drives the cohort patch on the
    /// new incarnation.
    WorkerRestarted {
        /// The restarted worker's index.
        worker: usize,
    },
    /// The awaited worker is down for good: it died and either no
    /// supervisor is running or the supervisor exhausted its restart
    /// budget. The rollout treats this like a stall (breach or partial
    /// rollout) while the rest of the fleet keeps serving.
    WorkerDown {
        /// The dead worker's index.
        worker: usize,
    },
    /// A rolling rollout stalled mid-fleet: some workers already serve the
    /// new version, the rest never will (the stalled worker's pending
    /// patch was withdrawn) — the fleet is left version-skewed and the
    /// caller must decide whether to retry forward or roll the updated
    /// workers back.
    PartialRollout {
        /// Workers now serving the new version.
        updated: Vec<usize>,
        /// Workers still on the old version (stalled or never reached).
        remaining: Vec<usize>,
    },
    /// A [`RolloutPolicy::Guarded`] value reached the unguarded driver —
    /// an internal dispatch bug, surfaced as a typed error instead of a
    /// panic inside a live fleet.
    MisroutedPolicy,
    /// A staged rollout pushed the cross-fleet version skew (distinct
    /// live versions minus one) past the orchestrator's configured bound.
    SkewExceeded {
        /// The skew observed at the violation.
        observed: usize,
        /// The configured bound.
        bound: usize,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Worker { worker, cause } => write!(f, "worker {worker}: {cause}"),
            FleetError::QueueStall {
                ingress,
                per_worker,
                completed,
                expected,
            } => {
                write!(f, "fleet did not drain: {ingress} ingress")?;
                if !per_worker.is_empty() {
                    write!(f, " + {per_worker:?} per-worker queued")?;
                }
                write!(f, ", {completed}/{expected} completed")
            }
            FleetError::RolloutStalled { worker } => {
                write!(f, "worker {worker} did not reach an update boundary")
            }
            FleetError::WorkerRestarted { worker } => {
                write!(
                    f,
                    "worker {worker} was restarted by its supervisor mid-wait"
                )
            }
            FleetError::WorkerDown { worker } => {
                write!(f, "worker {worker} is down and will not be restarted")
            }
            FleetError::PartialRollout { updated, remaining } => write!(
                f,
                "rolling rollout stalled mid-fleet: {updated:?} updated, {remaining:?} remaining"
            ),
            FleetError::MisroutedPolicy => {
                write!(f, "guarded policy routed to the unguarded rollout driver")
            }
            FleetError::SkewExceeded { observed, bound } => {
                write!(
                    f,
                    "version skew {observed} exceeded the configured bound {bound}"
                )
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// How a patch is rolled out across the fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum RolloutPolicy {
    /// Pause every worker at its next update point, apply everywhere at
    /// once (barrier rendezvous), resume everywhere.
    Simultaneous,
    /// Apply to one worker at a time; the rest keep serving throughout.
    Rolling,
    /// Self-healing rolling rollout: update the `canary` worker first,
    /// judge its post-step health (pause SLO, error counters, completion
    /// liveness) through a [`HealthGate`], then advance worker by worker
    /// re-checking after every step; on a breach, execute `on_breach` —
    /// hold, or roll every already-updated worker back. Use
    /// [`Fleet::rollout_guarded`] to also get the
    /// [`RolloutReportCard`].
    Guarded {
        /// The worker updated (and judged) first.
        canary: usize,
        /// The update-pause budget each step is held against.
        pause_slo: PauseSlo,
        /// What to do when a step breaches.
        on_breach: BreachAction,
    },
}

/// How long an idle worker waits for control traffic before rechecking
/// the queue. Bounds both shutdown latency and the time for an idle
/// worker to join a rollout.
const IDLE_WAIT: Duration = Duration::from_micros(500);

/// How long a rollout waits for a worker to apply before giving up.
const ROLLOUT_DEADLINE: Duration = Duration::from_secs(30);

enum Ctrl {
    Shutdown,
}

/// Supervision knobs: how fast death is noticed and how patiently (and
/// how often) a dead worker is rebooted before the fleet degrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// How often the supervisor sweeps the fleet for dead workers —
    /// bounds detection latency.
    pub poll: Duration,
    /// Backoff before the first restart of a worker; doubles on each
    /// consecutive restart of the same worker.
    pub backoff_base: Duration,
    /// Ceiling the exponential backoff saturates at.
    pub backoff_cap: Duration,
    /// Restarts per worker before the supervisor gives up on it. The
    /// fleet then degrades gracefully: the worker stays down, the edge
    /// keeps routing around it, and shutdown reports
    /// [`WorkerFailure::GaveUp`].
    pub max_restarts: u64,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            poll: Duration::from_micros(500),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            max_restarts: 3,
        }
    }
}

/// One supervised restart, timed phase by phase: how long death went
/// unnoticed plus reaping/failover (`detect`), booting the fresh server
/// (`reboot`), and replaying the persisted chain + installing the saved
/// snapshot ring (`replay`). `total` is detection → serving again.
#[derive(Debug, Clone)]
pub struct RestartReport {
    /// The restarted worker.
    pub worker: usize,
    /// What killed the previous incarnation.
    pub failure: String,
    /// Death noticed → old thread reaped, edge failed over, pending
    /// patches withdrawn.
    pub detect: Duration,
    /// Backoff + spawn + server boot (compile/link), excluding replay.
    pub reboot: Duration,
    /// Replaying the persisted patch chain and installing the saved
    /// snapshot ring.
    pub replay: Duration,
    /// The version the replay brought the fresh incarnation back to.
    pub replayed_to: String,
    /// Requests drained from the dead worker's inbox at failover and
    /// pushed back through the router (zero without an edge).
    pub rerouted: usize,
    /// Death noticed → rejoined and serving.
    pub total: Duration,
}

/// What a worker thread hands back at boot: the updater remote plus the
/// live handles a supervisor needs to observe and fault the running
/// worker from outside.
#[derive(Clone)]
struct WorkerLinks {
    remote: UpdaterRemote,
    /// The server's live fault-plan cell — crash points and pause delays
    /// can be armed mid-run.
    fault: Arc<Mutex<FaultPlan>>,
    /// Bumped by the worker every loop iteration; feeds the liveness
    /// gauge and survives restarts (the same cell is re-armed into each
    /// incarnation).
    heartbeat: Arc<AtomicU64>,
    /// The worker's persisted crash-durable state (replay chain +
    /// snapshot ring + pending ops), refreshed at quiescent boundaries.
    state: Arc<Mutex<Option<String>>>,
    /// How long this incarnation spent replaying persisted state at boot
    /// (zero for a first boot).
    replayed: Duration,
    /// The version the replay reached (the boot version for a first
    /// boot).
    replayed_to: String,
}

/// What a worker thread reports over its boot channel once serving.
struct BootInfo {
    remote: UpdaterRemote,
    fault: Arc<Mutex<FaultPlan>>,
    /// Time spent replaying persisted state (zero for a first boot).
    replayed: Duration,
    /// The version the replay reached (the boot version otherwise).
    replayed_to: String,
}

/// One incarnation of a worker: control channel, live links, and the
/// thread to reap. Swapped wholesale by the supervisor on restart.
struct Seat {
    ctrl: mpsc::Sender<Ctrl>,
    links: WorkerLinks,
    /// `None` after the supervisor reaped a dead incarnation (and before
    /// a successful respawn).
    join: Option<JoinHandle<Result<i64, String>>>,
}

pub(crate) struct Worker {
    pub(crate) id: usize,
    /// The current incarnation, swapped by the supervisor on restart.
    seat: Mutex<Seat>,
    /// Bumped on every successful respawn; rollout waits watch it to
    /// tell "restarted, re-drive the patch" apart from "stalled".
    epoch: AtomicU64,
    /// Whether the current incarnation is believed alive.
    up: AtomicBool,
    /// Set when the supervisor exhausted its restart budget.
    failed: AtomicBool,
    /// Successful supervised restarts of this worker.
    restarts: AtomicU64,
}

impl Worker {
    /// The current incarnation's updater remote. Cloned out (not
    /// borrowed) because the supervisor may swap the seat mid-use; an
    /// old clone stays safe — its Arcs just belong to a dead updater.
    pub(crate) fn remote(&self) -> UpdaterRemote {
        self.seat.lock().expect("poisoned").links.remote.clone()
    }

    /// Restart epoch: bumped once per successful supervised respawn.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Whether the current incarnation is believed alive.
    pub(crate) fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }

    /// Whether the supervisor has given up on this worker.
    pub(crate) fn has_failed(&self) -> bool {
        self.failed.load(Ordering::SeqCst)
    }

    fn fault_handle(&self) -> Arc<Mutex<FaultPlan>> {
        Arc::clone(&self.seat.lock().expect("poisoned").links.fault)
    }
}

/// Everything needed to (re)spawn any worker — the fleet's boot-time
/// configuration flattened per worker, kept alive for the supervisor.
struct RespawnSpec {
    mode: LinkMode,
    serve_modes: Vec<ServeMode>,
    src: String,
    version: String,
    /// Per-worker filesystem handles, one forked fault domain each —
    /// retained so read failures can be flipped on a live worker.
    fs: Vec<SimFs>,
    vm_profile: bool,
    shared: ServerShared,
    telemetry: Option<Arc<FleetTelemetry>>,
    edge: Option<Arc<Edge>>,
}

/// The supervisor-shared heart of a [`Fleet`]: the worker table plus the
/// respawn spec and the restart log.
struct FleetState {
    workers: Vec<Worker>,
    spec: RespawnSpec,
    restart_log: Mutex<Vec<RestartReport>>,
}

/// The supervisor thread: stopped (and joined) before workers at
/// shutdown so a restart never races the teardown.
struct SupervisorHandle {
    stop: Arc<AtomicBool>,
    join: JoinHandle<()>,
}

impl SupervisorHandle {
    fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.join.join();
    }
}

/// Maps a joined worker thread's outcome to a typed failure; a clean
/// exit reports `None`.
fn classify_join(res: std::thread::Result<Result<i64, String>>) -> Option<WorkerFailure> {
    match res {
        Ok(Ok(_)) => None,
        Ok(Err(e)) => Some(WorkerFailure::Guest(e)),
        Err(payload) => Some(match payload.downcast_ref::<InjectedCrash>() {
            Some(c) => WorkerFailure::Crashed(c.0),
            None => WorkerFailure::Panic,
        }),
    }
}

/// An open fleet-wide rollout trace: the `(trace, root span)` ids every
/// worker's update spans parent under, plus when coordination began.
pub(crate) struct RolloutTrace {
    trace: u64,
    span: u64,
    began: Instant,
}

/// A running fleet of FlashEd workers over one shared request queue.
pub struct Fleet {
    shared: ServerShared,
    /// Worker table + respawn spec + restart log, shared with the
    /// supervisor thread.
    state: Arc<FleetState>,
    /// The version every worker booted on (the skew baseline).
    boot_version: String,
    telemetry: Option<Arc<FleetTelemetry>>,
    /// The routed front door, when configured (see [`FleetConfig::with_edge`]).
    edge: Option<Arc<Edge>>,
    /// The acceptor thread routing ingress into the edge; stopped at
    /// shutdown.
    acceptor: Option<AcceptorHandle>,
    /// The supervisor thread, when configured (see
    /// [`FleetConfig::supervised`]); stopped before workers at shutdown.
    supervisor: Option<SupervisorHandle>,
    /// How long rollouts and drains wait for a worker (see
    /// [`FleetConfig::rollout_deadline`]).
    rollout_deadline: Duration,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("workers", &self.state.workers.len())
            .field("shared", &self.shared)
            .finish()
    }
}

impl Fleet {
    /// Boots `n` workers, each compiling `src` and serving from one shared
    /// queue. Every worker builds its server inside its own thread (guest
    /// processes are thread-local by construction).
    ///
    /// # Errors
    ///
    /// Returns the first worker's boot error; already-started workers are
    /// shut down.
    pub fn start(
        n: usize,
        mode: LinkMode,
        src: &str,
        version: &str,
        fs: &SimFs,
    ) -> Result<Fleet, FleetError> {
        Fleet::boot(&FleetConfig::new(n).link_mode(mode), src, version, fs)
    }

    /// Like [`Fleet::start`], with telemetry: a fleet-wide lifecycle
    /// journal (events worker-tagged), per-worker labelled metrics
    /// registries, and the coordinator's version-skew gauge — scrape them
    /// through [`Fleet::telemetry`].
    ///
    /// # Errors
    ///
    /// As [`Fleet::start`].
    pub fn start_telemetry(
        n: usize,
        mode: LinkMode,
        src: &str,
        version: &str,
        fs: &SimFs,
    ) -> Result<Fleet, FleetError> {
        Fleet::boot(
            &FleetConfig::new(n).link_mode(mode).with_telemetry(),
            src,
            version,
            fs,
        )
    }

    /// Boots a fleet from a full [`FleetConfig`]: serve mode (blocking or
    /// AMPED event loop), telemetry, and per-worker overrides for device
    /// latency, cache size and concurrency window.
    ///
    /// # Errors
    ///
    /// As [`Fleet::start`].
    pub fn start_cfg(
        cfg: &FleetConfig,
        src: &str,
        version: &str,
        fs: &SimFs,
    ) -> Result<Fleet, FleetError> {
        Fleet::boot(cfg, src, version, fs)
    }

    fn boot(cfg: &FleetConfig, src: &str, version: &str, fs: &SimFs) -> Result<Fleet, FleetError> {
        let n = cfg.workers;
        assert!(n > 0, "a fleet needs at least one worker");
        let telemetry = cfg.telemetry.then(|| {
            let journal = cfg.journal.clone().unwrap_or_default();
            let tracer = cfg.tracing.then(Tracer::new);
            Arc::new(FleetTelemetry::shared(n, cfg.worker_base, journal, tracer))
        });
        let shared = ServerShared::new();
        let edge = cfg
            .edge
            .as_ref()
            .map(|ec| Arc::new(Edge::new(n, ec, shared.clone(), telemetry.clone())));
        // Flatten the per-worker configuration into the respawn spec: the
        // supervisor reboots workers from exactly what they booted with
        // (minus the one-shot crash faults, disarmed on respawn).
        let mut serve_modes = Vec::with_capacity(n);
        let mut worker_fs = Vec::with_capacity(n);
        for id in 0..n {
            let ov = cfg.override_for(id);
            // Each worker gets its own fault domain over the shared
            // content: read failures are per worker, flippable live.
            let mut wfs = fs.fork_faults();
            if let Some(latency) = ov.read_latency {
                wfs.set_read_latency(latency);
            }
            if ov.fault.read_errors {
                wfs.set_read_failures(true);
            }
            worker_fs.push(wfs);
            serve_modes.push(match cfg.serve_mode {
                ServeMode::Blocking => ServeMode::Blocking,
                ServeMode::EventLoop(mut ec) => {
                    if let Some(c) = ov.cache_entries {
                        ec.cache_entries = c;
                    }
                    if let Some(m) = ov.max_in_flight {
                        ec.max_in_flight = m;
                    }
                    ServeMode::EventLoop(ec)
                }
            });
        }
        let spec = RespawnSpec {
            mode: cfg.link_mode,
            serve_modes,
            src: src.to_string(),
            version: version.to_string(),
            fs: worker_fs,
            vm_profile: cfg.vm_profile,
            shared: shared.clone(),
            telemetry: telemetry.clone(),
            edge: edge.clone(),
        };
        let mut workers = Vec::with_capacity(n);
        let mut boot_err = None;
        for id in 0..n {
            let ov = cfg.override_for(id);
            let heartbeat = Arc::new(AtomicU64::new(0));
            let state_slot = Arc::new(Mutex::new(None));
            match spawn_worker(&spec, id, ov.fault, None, heartbeat, state_slot) {
                Ok(seat) => workers.push(Worker {
                    id,
                    seat: Mutex::new(seat),
                    epoch: AtomicU64::new(0),
                    up: AtomicBool::new(true),
                    failed: AtomicBool::new(false),
                    restarts: AtomicU64::new(0),
                }),
                Err(cause) => {
                    boot_err = Some(FleetError::Worker { worker: id, cause });
                    break;
                }
            }
        }
        if let Some(e) = boot_err {
            for w in workers {
                let seat = w.seat.into_inner().expect("poisoned");
                let _ = seat.ctrl.send(Ctrl::Shutdown);
                if let Some(join) = seat.join {
                    let _ = join.join();
                }
            }
            return Err(e);
        }
        if let Some(t) = &telemetry {
            t.set_live_versions(&vec![version.to_string(); n]);
        }
        let acceptor = edge.as_ref().map(Edge::start_acceptor);
        let state = Arc::new(FleetState {
            workers,
            spec,
            restart_log: Mutex::new(Vec::new()),
        });
        let supervisor = cfg
            .supervision
            .map(|sc| start_supervisor(Arc::clone(&state), sc));
        Ok(Fleet {
            shared,
            state,
            boot_version: version.to_string(),
            telemetry,
            edge,
            acceptor,
            supervisor,
            rollout_deadline: cfg.rollout_deadline,
        })
    }

    /// The routed front door, when this fleet was booted with
    /// [`FleetConfig::with_edge`]. Load generators submit through it
    /// directly (bypassing the acceptor) to stamp admission instants at
    /// the source.
    pub fn edge(&self) -> Option<&Arc<Edge>> {
        self.edge.as_ref()
    }

    /// The fleet's telemetry (journal, registries, skew gauge), when
    /// started through [`Fleet::start_telemetry`].
    pub fn telemetry(&self) -> Option<&FleetTelemetry> {
        self.telemetry.as_deref()
    }

    /// The workers, in id order (for the rollout orchestrator).
    pub(crate) fn workers(&self) -> &[Worker] {
        &self.state.workers
    }

    /// The rollout/drain deadline this fleet was configured with.
    pub(crate) fn deadline(&self) -> Duration {
        self.rollout_deadline
    }

    /// The version worker `w` is currently serving: its last successful
    /// update's target version, or the boot version.
    pub(crate) fn worker_version(&self, w: &Worker) -> String {
        w.remote()
            .reports()
            .last()
            .map(|r| r.to_version.clone())
            .unwrap_or_else(|| self.boot_version.clone())
    }

    /// The version each worker currently serves, in worker order.
    pub fn live_versions(&self) -> Vec<String> {
        self.state
            .workers
            .iter()
            .map(|w| self.worker_version(w))
            .collect()
    }

    /// Recomputes the version-skew gauge from the workers' current
    /// versions (no-op without telemetry).
    pub(crate) fn refresh_skew(&self) {
        if let Some(t) = &self.telemetry {
            t.set_live_versions(&self.live_versions());
        }
    }

    /// Fleet size.
    pub fn worker_count(&self) -> usize {
        self.state.workers.len()
    }

    /// Control handle for one worker — canary a patch on a single worker,
    /// or inspect its apply history, without a fleet-wide rollout.
    ///
    /// The handle belongs to the worker's *current incarnation*: after a
    /// supervised restart an old handle keeps working but addresses the
    /// dead updater; re-fetch after [`Fleet::worker_epoch`] changes.
    pub fn remote(&self, worker: usize) -> UpdaterRemote {
        self.state.workers[worker].remote()
    }

    /// Arms a fault plan on a *live* worker: crash points and pause
    /// delays take effect at the worker's next pass through the matching
    /// seam, no reboot needed.
    pub fn inject_worker_fault(&self, worker: usize, plan: FaultPlan) {
        *self.state.workers[worker]
            .fault_handle()
            .lock()
            .expect("poisoned") = plan;
    }

    /// Starts (or stops) failing every device read on a *live* worker —
    /// the flag is shared with the worker's filesystem handle, so the
    /// flip is visible on its very next read.
    pub fn set_worker_read_failures(&self, worker: usize, fail: bool) {
        self.state.spec.fs[worker].set_read_failures(fail);
    }

    /// Every supervised restart so far, in completion order.
    pub fn restart_reports(&self) -> Vec<RestartReport> {
        self.state.restart_log.lock().expect("poisoned").clone()
    }

    /// Whether `worker`'s current incarnation is believed alive.
    pub fn worker_up(&self, worker: usize) -> bool {
        self.state.workers[worker].is_up()
    }

    /// `worker`'s restart epoch: 0 for the boot incarnation, bumped once
    /// per successful supervised restart.
    pub fn worker_epoch(&self, worker: usize) -> u64 {
        self.state.workers[worker].epoch()
    }

    /// `worker`'s liveness heartbeat: bumped by the worker every serve
    /// loop iteration, preserved across supervised restarts.
    pub fn worker_heartbeat(&self, worker: usize) -> u64 {
        let seat = self.state.workers[worker].seat.lock().expect("poisoned");
        seat.links.heartbeat.load(Ordering::Relaxed)
    }

    /// The shared queue/completion state (clone to feed or observe the
    /// fleet from other threads).
    pub fn shared(&self) -> ServerShared {
        self.shared.clone()
    }

    /// Enqueues client requests onto the shared queue.
    pub fn push_requests<I>(&self, requests: I)
    where
        I: IntoIterator<Item = String>,
    {
        self.shared.push_requests(requests);
    }

    /// Completed responses so far, fleet-wide, in completion order.
    pub fn completions(&self) -> Vec<Completion> {
        self.shared.completions()
    }

    /// Blocks until the shared queue is empty and every pulled request has
    /// completed (`expected` = completions expected so far).
    ///
    /// # Errors
    ///
    /// Errors if the fleet does not drain within the deadline.
    pub fn drain(&self, expected: usize) -> Result<(), FleetError> {
        let deadline = Instant::now() + self.rollout_deadline;
        loop {
            let edge_queued = self.edge.as_ref().map_or(0, |e| e.queued());
            if self.shared.queue_len() == 0
                && edge_queued == 0
                && self.shared.completions_len() >= expected
            {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(FleetError::QueueStall {
                    ingress: self.shared.queue_len(),
                    per_worker: self.edge.as_ref().map_or_else(Vec::new, |e| e.depths()),
                    completed: self.shared.completions_len(),
                    expected,
                });
            }
            thread::sleep(Duration::from_micros(200));
        }
    }

    /// Rolls `patch` out to every worker under `policy`, blocking until
    /// each worker has either applied it or had it rejected. Serving
    /// continues throughout (for [`RolloutPolicy::Rolling`], completions
    /// never stop fleet-wide; for [`RolloutPolicy::Simultaneous`], the
    /// whole fleet pauses once, together). For
    /// [`RolloutPolicy::Guarded`] this delegates to
    /// [`Fleet::rollout_guarded`] and drops the report card.
    ///
    /// # Errors
    ///
    /// Errors if a worker fails to reach an update boundary within the
    /// rollout deadline (e.g. its thread died). A rolling rollout that
    /// stalls after at least one worker updated returns
    /// [`FleetError::PartialRollout`] (the stalled worker's pending patch
    /// is withdrawn first, so it cannot land later).
    pub fn rollout(
        &self,
        patch: &Patch,
        policy: RolloutPolicy,
    ) -> Result<FleetUpdateReport, FleetError> {
        match policy {
            RolloutPolicy::Guarded {
                canary,
                pause_slo,
                on_breach,
            } => self
                .rollout_guarded(patch, canary, pause_slo, on_breach)
                .map(|(report, _)| report),
            policy => self.rollout_unguarded(patch, policy),
        }
    }

    /// The [`RolloutPolicy::Simultaneous`] / [`RolloutPolicy::Rolling`]
    /// entry point: each policy is a degenerate [`RolloutPlan`] (one
    /// all-worker barrier cohort; one cohort per worker), driven by the
    /// [`crate::rollout`] orchestrator.
    fn rollout_unguarded(
        &self,
        patch: &Patch,
        policy: RolloutPolicy,
    ) -> Result<FleetUpdateReport, FleetError> {
        let plan = match policy {
            RolloutPolicy::Simultaneous => RolloutPlan::simultaneous(),
            RolloutPolicy::Rolling => RolloutPlan::rolling(),
            // A guarded policy here is a dispatch bug in the caller; a
            // typed error beats a panic inside a live fleet.
            RolloutPolicy::Guarded { .. } => return Err(FleetError::MisroutedPolicy),
        };
        self.rollout_plan(patch, &plan).map(|r| r.fleet_report)
    }

    /// Drives this fleet alone through an arbitrary [`RolloutPlan`] — a
    /// one-shard [`Orchestrator`] run with no skew bound.
    ///
    /// # Errors
    ///
    /// As [`Fleet::rollout`].
    pub fn rollout_plan(
        &self,
        patch: &Patch,
        plan: &RolloutPlan,
    ) -> Result<OrchestratorReport, FleetError> {
        Orchestrator::new(std::slice::from_ref(self)).rollout(patch, plan)
    }

    /// Opens a rollout trace: allocates `(trace, root span)` ids on the
    /// fleet tracer and propagates them to every worker, so the update
    /// spans each worker records during this rollout parent under one
    /// fleet-wide root. Returns `None` when tracing is off.
    pub(crate) fn begin_rollout_trace(&self) -> Option<RolloutTrace> {
        let tracer = self.telemetry.as_deref()?.tracer()?;
        let trace = tracer.next_trace_id();
        let span = tracer.next_span_id();
        for w in &self.state.workers {
            w.remote().set_span_parent(trace, span);
        }
        Some(RolloutTrace {
            trace,
            span,
            began: Instant::now(),
        })
    }

    /// Closes a rollout trace: records the root `Rollout` span (covering
    /// the whole coordination window, so every worker's update spans nest
    /// inside it) and clears the propagated context — later direct
    /// updates must not parent under a span that has ended.
    pub(crate) fn end_rollout_trace(&self, rt: Option<RolloutTrace>, patch: &Patch) {
        let Some(rt) = rt else { return };
        let Some(tracer) = self.telemetry.as_deref().and_then(FleetTelemetry::tracer) else {
            return;
        };
        for w in &self.state.workers {
            w.remote().clear_span_parent();
        }
        let start = tracer.since_epoch(rt.began);
        let end = tracer.now().max(start);
        tracer.record(Span {
            trace: rt.trace,
            id: rt.span,
            parent: None,
            kind: SpanKind::Rollout,
            name: "rollout",
            worker: None,
            start,
            dur: end.saturating_sub(start),
            update: None,
            request: None,
            detail: Some(format!("{}->{}", patch.from_version, patch.to_version)),
        });
    }

    /// Per-worker `(applied, failed, pauses)` counts before a rollout.
    pub(crate) fn baselines(&self) -> Vec<(usize, usize, usize)> {
        self.state
            .workers
            .iter()
            .map(|w| {
                let remote = w.remote();
                (
                    remote.applied_count(),
                    remote.failure_count(),
                    remote.pauses().len(),
                )
            })
            .collect()
    }

    /// Gathers everything each worker applied/failed/paused since
    /// `baselines` into a [`FleetUpdateReport`].
    pub(crate) fn collect_report(&self, baselines: &[(usize, usize, usize)]) -> FleetUpdateReport {
        let mut report = FleetUpdateReport {
            workers: self.state.workers.len(),
            ..FleetUpdateReport::default()
        };
        for (w, (applied0, failed0, pauses0)) in self.state.workers.iter().zip(baselines) {
            // `skip` instead of range-drain: a supervised restart resets
            // the worker's history to its replay hops, which can be
            // shorter than a baseline captured pre-crash.
            let remote = w.remote();
            for r in remote.reports().into_iter().skip(*applied0) {
                report.applied.push((w.id, r));
            }
            for e in remote.failures().into_iter().skip(*failed0) {
                report.failed.push((w.id, e));
            }
            let pause: Duration = remote.pauses().iter().skip(*pauses0).map(|p| p.dur).sum();
            report.pauses.push(pause);
        }
        report
    }

    /// The [`RolloutPolicy::Guarded`] driver: canary first, then worker
    /// by worker (a guarded [`RolloutPlan`] of singleton cohorts), each
    /// step judged by a [`crate::guard::HealthGate`] before the next
    /// begins. On a breach the rollout holds or rolls every updated
    /// worker back per `on_breach`. Returns the fleet report plus the
    /// run's [`RolloutReportCard`].
    ///
    /// # Errors
    ///
    /// Errors only when a *rollback* stalls (a worker that must undo
    /// cannot be reached) — forward stalls are health breaches, handled
    /// by the gate, not errors.
    pub fn rollout_guarded(
        &self,
        patch: &Patch,
        canary: usize,
        pause_slo: PauseSlo,
        on_breach: BreachAction,
    ) -> Result<(FleetUpdateReport, RolloutReportCard), FleetError> {
        assert!(canary < self.state.workers.len(), "canary out of range");
        let plan = RolloutPlan::guarded(canary, pause_slo, on_breach);
        self.rollout_plan(patch, &plan)
            .map(|r| (r.fleet_report, r.card))
    }

    /// Per-worker device-read-error counts (zeros untelemetered).
    pub(crate) fn read_error_counts(&self) -> Vec<u64> {
        match &self.telemetry {
            Some(t) => (0..self.state.workers.len())
                .map(|i| t.worker(i).read_errors())
                .collect(),
            None => vec![0; self.state.workers.len()],
        }
    }

    /// Waits until `worker` has resolved one more patch than its baseline.
    /// `epoch0` is the worker's restart epoch at enqueue time: a bump
    /// mid-wait means a supervisor rebooted the worker (the in-flight
    /// patch was withdrawn) and surfaces as
    /// [`FleetError::WorkerRestarted`] for the caller to re-drive.
    pub(crate) fn await_worker(
        &self,
        worker: &Worker,
        base: (usize, usize, usize),
        epoch0: u64,
    ) -> Result<(), FleetError> {
        self.await_worker_n(worker, base, 1, epoch0)
    }

    /// Waits until `worker` has resolved `n` more patches than its
    /// baseline (a rollback *chain* resolves several in one pause).
    pub(crate) fn await_worker_n(
        &self,
        worker: &Worker,
        (applied0, failed0, _): (usize, usize, usize),
        n: usize,
        epoch0: u64,
    ) -> Result<(), FleetError> {
        let deadline = Instant::now() + self.rollout_deadline;
        loop {
            if worker.has_failed() {
                return Err(FleetError::WorkerDown { worker: worker.id });
            }
            if worker.epoch() != epoch0 {
                return Err(FleetError::WorkerRestarted { worker: worker.id });
            }
            let remote = worker.remote();
            let resolved = remote.applied_count() + remote.failure_count();
            if resolved >= applied0 + failed0 + n && remote.pending_count() == 0 {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(FleetError::RolloutStalled { worker: worker.id });
            }
            thread::sleep(Duration::from_micros(200));
        }
    }

    /// Stops every worker and returns the per-worker served-request counts
    /// (in worker order).
    ///
    /// # Errors
    ///
    /// Returns the first worker error (guest trap, crash, or panic),
    /// after all workers have been joined. A worker the supervisor gave
    /// up on reports [`WorkerFailure::GaveUp`].
    pub fn shutdown(mut self) -> Result<Vec<i64>, FleetError> {
        // Stop the supervisor before anything else: a restart racing the
        // teardown would resurrect a worker we are about to join.
        if let Some(supervisor) = self.supervisor.take() {
            supervisor.stop();
        }
        // Stop the acceptor next: it finishes routing whatever is still
        // in the ingress queue, so workers see those requests before
        // their shutdown signal lands.
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.stop();
        }
        for w in &self.state.workers {
            let _ = w.seat.lock().expect("poisoned").ctrl.send(Ctrl::Shutdown);
        }
        let mut served = Vec::with_capacity(self.state.workers.len());
        let mut first_err: Option<FleetError> = None;
        for w in &self.state.workers {
            let join = w.seat.lock().expect("poisoned").join.take();
            match join {
                Some(join) => match join.join() {
                    Ok(Ok(n)) => served.push(n),
                    res => {
                        let cause =
                            classify_join(res).unwrap_or(WorkerFailure::Guest(String::new()));
                        first_err.get_or_insert(FleetError::Worker {
                            worker: w.id,
                            cause,
                        });
                        served.push(0);
                    }
                },
                // The supervisor reaped this incarnation and gave up (or
                // its last respawn failed): nothing to join, the failure
                // is the report.
                None => {
                    first_err.get_or_insert(FleetError::Worker {
                        worker: w.id,
                        cause: WorkerFailure::GaveUp {
                            restarts: w.restarts.load(Ordering::SeqCst),
                        },
                    });
                    served.push(0);
                }
            }
        }
        match first_err {
            None => Ok(served),
            Some(e) => Err(e),
        }
    }
}

/// Everything one worker thread needs, bundled (the spawn site builds it
/// from the [`RespawnSpec`]).
struct WorkerCtx {
    mode: LinkMode,
    serve_mode: ServeMode,
    src: String,
    version: String,
    fs: SimFs,
    fault: FaultPlan,
    vm_profile: bool,
    shared: ServerShared,
    telemetry: Option<ServerTelemetry>,
    inbox: Option<Arc<Inbox>>,
    /// Persisted crash-durable state to replay at boot (the respawn
    /// path); `None` boots fresh.
    restore: Option<String>,
    heartbeat: Arc<AtomicU64>,
    state_slot: Arc<Mutex<Option<String>>>,
}

/// Spawns (or respawns) worker `id` from the fleet's respawn spec,
/// blocking until the worker reports its boot outcome.
fn spawn_worker(
    spec: &RespawnSpec,
    id: usize,
    fault: FaultPlan,
    restore: Option<String>,
    heartbeat: Arc<AtomicU64>,
    state_slot: Arc<Mutex<Option<String>>>,
) -> Result<Seat, WorkerFailure> {
    let (ctrl_tx, ctrl_rx) = mpsc::channel();
    let (boot_tx, boot_rx) = mpsc::channel();
    let ctx = WorkerCtx {
        mode: spec.mode,
        serve_mode: spec.serve_modes[id],
        src: spec.src.clone(),
        version: spec.version.clone(),
        fs: spec.fs[id].clone(),
        fault,
        vm_profile: spec.vm_profile,
        shared: spec.shared.clone(),
        telemetry: spec.telemetry.as_ref().map(|t| t.worker(id).clone()),
        inbox: spec.edge.as_ref().map(|e| Arc::clone(e.inbox(id))),
        restore,
        heartbeat: Arc::clone(&heartbeat),
        state_slot: Arc::clone(&state_slot),
    };
    let join = thread::Builder::new()
        .name(format!("flashed-worker-{id}"))
        .spawn(move || worker_main(ctx, ctrl_rx, boot_tx))
        .map_err(|e| WorkerFailure::Spawn(e.to_string()))?;
    match boot_rx.recv() {
        Ok(Ok(info)) => Ok(Seat {
            ctrl: ctrl_tx,
            links: WorkerLinks {
                remote: info.remote,
                fault: info.fault,
                heartbeat,
                state: state_slot,
                replayed: info.replayed,
                replayed_to: info.replayed_to,
            },
            join: Some(join),
        }),
        Ok(Err(e)) => {
            let _ = join.join();
            Err(WorkerFailure::Boot(e))
        }
        Err(_) => {
            let _ = join.join();
            Err(WorkerFailure::BootChannel)
        }
    }
}

/// Starts the supervisor thread sweeping `state` for dead workers.
fn start_supervisor(state: Arc<FleetState>, cfg: SupervisorConfig) -> SupervisorHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_t = Arc::clone(&stop);
    let join = thread::Builder::new()
        .name("flashed-supervisor".to_string())
        .spawn(move || supervisor_main(&state, cfg, &stop_t))
        .expect("supervisor thread spawns");
    SupervisorHandle { stop, join }
}

/// The supervisor loop: detect a dead worker (its thread finished without
/// being asked to), fail its traffic over at the edge, withdraw its
/// in-flight patches, and — within the restart budget, after a capped
/// exponential backoff — reboot it from its persisted crash-durable
/// state, restore its vnode ownership, and log a [`RestartReport`].
fn supervisor_main(state: &FleetState, cfg: SupervisorConfig, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        for w in &state.workers {
            if w.has_failed() {
                continue;
            }
            let dead = {
                let seat = w.seat.lock().expect("poisoned");
                seat.join.as_ref().is_none_or(JoinHandle::is_finished)
            };
            if !dead {
                continue;
            }
            let detect_began = Instant::now();
            w.up.store(false, Ordering::SeqCst);
            if let Some(t) = &state.spec.telemetry {
                t.set_worker_up(w.id, false);
            }
            // Fail the dead worker's traffic over: its vnodes route to
            // ring successors, its queued requests drain back through the
            // router. Idempotent — a retry sweep won't double-count.
            let rerouted = state.spec.edge.as_ref().map_or(0, |e| e.mark_down(w.id));
            // Reap the dead incarnation; `join` already `None` means a
            // previous respawn attempt failed and this is a retry.
            let (failure, old_links) = {
                let mut seat = w.seat.lock().expect("poisoned");
                let links = seat.links.clone();
                let failure = match seat.join.take() {
                    Some(join) => classify_join(join.join())
                        .unwrap_or_else(|| WorkerFailure::Guest("worker exited".to_string())),
                    None => WorkerFailure::Guest("previous respawn failed".to_string()),
                };
                (failure, links)
            };
            // The dead worker's remote Arcs outlive its thread: withdraw
            // whatever was still enqueued so those lifecycles close
            // (`Aborted`) instead of dangling `Enqueued` in the journal.
            old_links
                .remote
                .cancel_pending("worker crashed; withdrawn for re-drive");
            let attempts = w.restarts.load(Ordering::SeqCst);
            if attempts >= cfg.max_restarts {
                // Budget exhausted: degrade gracefully. The worker stays
                // down, the edge keeps routing around it, shutdown
                // reports `GaveUp`.
                w.failed.store(true, Ordering::SeqCst);
                continue;
            }
            let detect = detect_began.elapsed();
            let shift = u32::try_from(attempts.min(20)).expect("bounded");
            let backoff = cfg
                .backoff_base
                .saturating_mul(1u32 << shift)
                .min(cfg.backoff_cap);
            thread::sleep(backoff);
            let blob = old_links.state.lock().expect("poisoned").clone();
            let spawn_began = Instant::now();
            // Respawn with crash faults disarmed: they are one-shot by
            // design (a crash loop would just burn the restart budget).
            match spawn_worker(
                &state.spec,
                w.id,
                FaultPlan::none(),
                blob,
                Arc::clone(&old_links.heartbeat),
                Arc::clone(&old_links.state),
            ) {
                Ok(seat) => {
                    let spawn_dur = spawn_began.elapsed();
                    let replay = seat.links.replayed;
                    let replayed_to = seat.links.replayed_to.clone();
                    *w.seat.lock().expect("poisoned") = seat;
                    w.restarts.fetch_add(1, Ordering::SeqCst);
                    w.up.store(true, Ordering::SeqCst);
                    // Epoch bump last: an await that sees the new epoch
                    // must also see the new seat.
                    w.epoch.fetch_add(1, Ordering::SeqCst);
                    if let Some(t) = &state.spec.telemetry {
                        t.set_worker_up(w.id, true);
                        t.record_worker_restart();
                    }
                    if let Some(e) = &state.spec.edge {
                        e.mark_up(w.id);
                    }
                    // Second withdrawal sweep: an op enqueued onto the
                    // dead incarnation *during* the reboot window (after
                    // the first cancel, before the seat swap) would
                    // dangle `Enqueued` forever; close it now that no new
                    // enqueue can reach the old seat.
                    old_links
                        .remote
                        .cancel_pending("worker crashed; withdrawn for re-drive");
                    state
                        .restart_log
                        .lock()
                        .expect("poisoned")
                        .push(RestartReport {
                            worker: w.id,
                            failure: failure.to_string(),
                            detect,
                            reboot: spawn_dur.saturating_sub(replay),
                            replay,
                            replayed_to,
                            rerouted,
                            total: detect_began.elapsed(),
                        });
                }
                Err(_) => {
                    // Seat stays reaped (`join` is `None`); the next sweep
                    // retries until the budget runs out.
                    w.restarts.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        thread::sleep(cfg.poll);
    }
}

/// Rebuilds a respawned worker to its pre-crash version: re-applies the
/// persisted net patch chain (strict — a replay failure is a boot
/// failure), then installs the persisted snapshot ring and re-queues
/// whatever ops the crash interrupted (for a crashed rollback chain,
/// its remaining hops). Returns the version the replay reached.
fn restore_worker(server: &mut Server, blob: &str, boot_version: &str) -> Result<String, String> {
    let (chain, inner) = dsu_core::decode_worker_state(blob)?;
    server.updater.strict = true;
    let mut version = boot_version.to_string();
    for patch in chain {
        let to = patch.to_version.clone();
        server.queue_patch(patch);
        server
            .apply_pending_now()
            .map_err(|e| format!("replay failed applying to {to}: {e}"))?;
        version = to;
    }
    server
        .load_updater_state(&inner)
        .map_err(|e| format!("replay failed installing state: {e}"))?;
    server.updater.strict = false;
    Ok(version)
}

/// How far a worker's apply history has moved — the trigger for
/// re-persisting its crash-durable state.
fn history_mark(server: &Server) -> (usize, usize) {
    (server.updater.log().len(), server.updater.failures().len())
}

/// Persists the worker's crash-durable state (net patch chain + snapshot
/// ring + pending ops) into the supervisor-visible slot.
fn persist_state(server: &Server, slot: &Mutex<Option<String>>) {
    *slot.lock().expect("poisoned") = Some(server.updater.save_worker_state());
}

/// One worker: boots its own server against the shared state, then serves
/// until told to shut down, applying patches fed through its remote at
/// update points (busy) or quiescent boundaries (idle). A respawned
/// worker first replays its persisted state back to its pre-crash
/// version. Each loop iteration bumps the heartbeat, re-persists state
/// when the apply history moved, and passes the injectable crash seams.
fn worker_main(
    ctx: WorkerCtx,
    ctrl: mpsc::Receiver<Ctrl>,
    boot_tx: mpsc::Sender<Result<BootInfo, String>>,
) -> Result<i64, String> {
    let mut server = match Server::start_routed(
        ctx.mode,
        ctx.serve_mode,
        &ctx.src,
        &ctx.version,
        ctx.fs,
        ctx.shared,
        ctx.telemetry,
        ctx.inbox,
    ) {
        Ok(s) => s,
        Err(e) => {
            let _ = boot_tx.send(Err(e.to_string()));
            return Err(e.to_string());
        }
    };
    // Fleet workers keep serving their old version when a patch is
    // rejected; the coordinator reads the failure out of the shared log.
    server.updater.strict = false;
    if ctx.vm_profile {
        server.set_vm_profiling(true);
    }
    server.inject_fault(ctx.fault);
    let fault = server.fault_handle();
    // The mid-transform crash point fires from inside the apply pipeline
    // itself, via the core's thread-local phase probe — bindings already
    // flipped, state transformation interrupted.
    {
        let fault = Arc::clone(&fault);
        dsu_core::set_phase_probe(Some(Box::new(move |phase| {
            if phase == "transform" {
                crash_if_armed(&fault, CrashPoint::MidTransform);
            }
        })));
    }
    let replay_began = Instant::now();
    let (replayed, replayed_to) = match &ctx.restore {
        Some(blob) => match restore_worker(&mut server, blob, &ctx.version) {
            Ok(v) => (replay_began.elapsed(), v),
            Err(e) => {
                let _ = boot_tx.send(Err(e.clone()));
                return Err(e);
            }
        },
        None => (Duration::ZERO, ctx.version.clone()),
    };
    // "Mid-soak" means an update landed in *this* incarnation — replay
    // hops don't count, or a restart after a crash would re-crash.
    let soak_base = server.updater.log().len();
    let info = BootInfo {
        remote: server.remote(),
        fault: Arc::clone(&fault),
        replayed,
        replayed_to,
    };
    if boot_tx.send(Ok(info)).is_err() {
        return Ok(0); // coordinator went away before boot finished
    }
    persist_state(&server, &ctx.state_slot);
    let mut persisted = history_mark(&server);

    // Lands the collapsed-stack VM profile (when armed) in the worker's
    // telemetry slot on the way out, success or failure.
    let finish = |server: &Server, r: Result<i64, String>| {
        server.publish_vm_profile();
        r
    };
    let mut total = 0i64;
    loop {
        ctx.heartbeat.fetch_add(1, Ordering::Relaxed);
        // Quiescent boundary: re-persist crash-durable state whenever the
        // apply history moved since the last persist.
        let mark = history_mark(&server);
        if mark != persisted {
            persist_state(&server, &ctx.state_slot);
            persisted = mark;
        }
        if server.updater.log().len() > soak_base {
            crash_if_armed(&fault, CrashPoint::MidSoak);
        }
        crash_if_armed(&fault, CrashPoint::Serving);
        match ctrl.try_recv() {
            Ok(Ctrl::Shutdown) | Err(TryRecvError::Disconnected) => {
                return finish(&server, Ok(total))
            }
            Err(TryRecvError::Empty) => {}
        }
        // A patch that arrived while the queue was empty never meets an
        // update point (the guest exits its serve loop without passing
        // one); apply it here, at the quiescent boundary. Non-strict, so
        // rejections are recorded, not returned.
        if server.updater.pending_count() > 0 {
            if let Err(e) = server.apply_pending_now() {
                return finish(&server, Err(e.to_string()));
            }
        }
        match server.serve() {
            Ok(0) => match ctrl.recv_timeout(IDLE_WAIT) {
                Ok(Ctrl::Shutdown) | Err(RecvTimeoutError::Disconnected) => {
                    return finish(&server, Ok(total))
                }
                Err(RecvTimeoutError::Timeout) => {}
            },
            Ok(n) => total += n,
            Err(e) => return finish(&server, Err(e.to_string())),
        }
    }
}
