//! A sharded FlashEd fleet with coordinated live updates.
//!
//! The paper updates one single-threaded server mid-traffic. This module
//! scales that experiment out: a [`Fleet`] runs N worker threads, each
//! owning its *own* [`vm::Process`] (guest state is thread-local; nothing
//! about the VM becomes concurrent), all pulling from one shared request
//! queue ([`ServerShared`]). A coordinator thread broadcasts a compiled
//! [`Patch`] to every worker through [`dsu_core::UpdaterRemote`] handles
//! under one of two rollout policies:
//!
//! * [`RolloutPolicy::Simultaneous`] — every worker pauses at its next
//!   update point, a barrier lines the whole fleet up, all workers apply
//!   at once, all resume. One fleet-wide service gap; no version skew.
//! * [`RolloutPolicy::Rolling`] — workers apply one at a time; while one
//!   pauses the rest keep serving, so the fleet never stops completing
//!   requests. Transient version skew; no fleet-wide gap.
//! * [`RolloutPolicy::Guarded`] — a canary worker updates first and a
//!   [`crate::guard::HealthGate`] judges every step (pause-SLO budget,
//!   error counters, completion liveness) before the patch advances; a
//!   breach holds the line or rolls every updated worker back, and the
//!   whole run leaves a [`crate::guard::RolloutReportCard`] behind.
//!
//! Workers run their updaters non-strict: a worker whose apply is rejected
//! keeps serving its old version and the failure lands in the rollout's
//! [`FleetUpdateReport`] — the rest of the fleet still rolls forward.
//! Deliberate misbehaviour for hardening tests is threaded in per worker
//! through [`WorkerOverride::fault`] (see [`crate::fault::FaultPlan`]).

use std::fmt;
use std::sync::mpsc::{self, RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use dsu_core::{FleetUpdateReport, Patch, UpdaterRemote};
use dsu_obs::trace::{Span, SpanKind};
use dsu_obs::{Journal, Tracer};
use vm::LinkMode;

use crate::edge::{AcceptorHandle, Edge, EdgeConfig, Inbox};
use crate::fault::FaultPlan;
use crate::fs::SimFs;
use crate::guard::{BreachAction, PauseSlo, RolloutReportCard};
use crate::rollout::{Orchestrator, OrchestratorReport, RolloutPlan};
use crate::server::{Completion, ServeMode, Server, ServerShared};
use crate::telemetry::{FleetTelemetry, ServerTelemetry};

/// Per-worker deviations from the fleet-wide configuration — a fleet
/// whose workers sit on heterogeneous "hardware" (different device
/// latencies, cache sizes, concurrency windows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerOverride {
    /// Per-read device latency for this worker's filesystem copy.
    pub read_latency: Option<Duration>,
    /// Buffer-cache capacity (event-loop mode only).
    pub cache_entries: Option<usize>,
    /// In-flight request window (event-loop mode only).
    pub max_in_flight: Option<usize>,
    /// Injected misbehaviour for hardening tests: pause/gate delays take
    /// effect at this worker's update pauses, read errors at its boot.
    pub fault: FaultPlan,
}

/// Fleet configuration: size, link mode, serve mode, telemetry, and
/// optional per-worker overrides. Built fluently:
///
/// ```
/// use flashed::{EventLoopConfig, FleetConfig, ServeMode};
/// let cfg = FleetConfig::new(4)
///     .serve_mode(ServeMode::EventLoop(EventLoopConfig::default()))
///     .with_telemetry();
/// ```
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Link mode every worker boots in.
    pub link_mode: LinkMode,
    /// Serve mode every worker runs (see [`WorkerOverride`] for per-worker
    /// event-loop tuning).
    pub serve_mode: ServeMode,
    /// Whether to build a [`FleetTelemetry`] (journal + registries).
    pub telemetry: bool,
    /// Whether to build a fleet-shared span [`dsu_obs::Tracer`] (implies
    /// `telemetry`): request, update and rollout spans land in one
    /// collector, ready for latency attribution.
    pub tracing: bool,
    /// Whether each worker arms its VM's hot-path profiler at boot and
    /// publishes the collapsed-stack profile at shutdown.
    pub vm_profile: bool,
    /// Per-worker overrides, indexed by worker id; missing entries mean
    /// "no override".
    pub overrides: Vec<WorkerOverride>,
    /// How long rollouts (and [`Fleet::drain`]) wait for a worker before
    /// giving up. Hardening tests shrink this so an injected gate stall
    /// surfaces in milliseconds instead of [`ROLLOUT_DEADLINE`].
    pub rollout_deadline: Duration,
    /// Journal the workers' lifecycle events land in. `None` builds a
    /// fresh in-memory one; an [`Orchestrator`] hands every shard fleet
    /// one shared (possibly write-ahead-backed) journal so the whole
    /// staged rollout is one recoverable stream. Implies `telemetry`.
    pub journal: Option<Journal>,
    /// First worker id used for journal tags and metric labels. Shard
    /// fleets under one orchestrator get disjoint ranges so worker ids
    /// stay globally unambiguous in the shared journal.
    pub worker_base: usize,
    /// Fronts the fleet with a routed [`Edge`]: per-worker bounded
    /// inboxes fed by an acceptor thread, instead of every worker
    /// contending on the shared ingress queue. `None` keeps the legacy
    /// shared-queue pull path.
    pub edge: Option<EdgeConfig>,
}

impl FleetConfig {
    /// A `workers`-strong updateable, blocking, untelemetered fleet.
    pub fn new(workers: usize) -> FleetConfig {
        FleetConfig {
            workers,
            link_mode: LinkMode::Updateable,
            serve_mode: ServeMode::Blocking,
            telemetry: false,
            tracing: false,
            vm_profile: false,
            overrides: Vec::new(),
            rollout_deadline: ROLLOUT_DEADLINE,
            journal: None,
            worker_base: 0,
            edge: None,
        }
    }

    /// Fronts the fleet with a routed edge (see [`EdgeConfig`]): workers
    /// pull from per-worker bounded inboxes, an acceptor routes the
    /// shared ingress queue, and overflow sheds with a typed error.
    pub fn with_edge(mut self, edge: EdgeConfig) -> FleetConfig {
        self.edge = Some(edge);
        self
    }

    /// Routes lifecycle events into a caller-supplied `journal` (shared
    /// across fleets, possibly write-ahead-backed) instead of a fresh
    /// in-memory one. Implies [`FleetConfig::with_telemetry`].
    pub fn with_journal(mut self, journal: Journal) -> FleetConfig {
        self.telemetry = true;
        self.journal = Some(journal);
        self
    }

    /// Offsets this fleet's worker ids (journal tags, metric labels) by
    /// `base`, so shard fleets in one orchestrator keep globally unique
    /// worker ids.
    pub fn worker_base(mut self, base: usize) -> FleetConfig {
        self.worker_base = base;
        self
    }

    /// Sets the rollout/drain deadline.
    pub fn rollout_deadline(mut self, deadline: Duration) -> FleetConfig {
        self.rollout_deadline = deadline;
        self
    }

    /// Sets the link mode.
    pub fn link_mode(mut self, mode: LinkMode) -> FleetConfig {
        self.link_mode = mode;
        self
    }

    /// Sets the serve mode.
    pub fn serve_mode(mut self, mode: ServeMode) -> FleetConfig {
        self.serve_mode = mode;
        self
    }

    /// Enables fleet telemetry.
    pub fn with_telemetry(mut self) -> FleetConfig {
        self.telemetry = true;
        self
    }

    /// Enables causal tracing (and, with it, telemetry): every worker's
    /// server emits request spans, every updater emits update/phase
    /// spans, and rollouts stamp a fleet-wide root span — all into one
    /// shared [`dsu_obs::Tracer`].
    pub fn with_tracing(mut self) -> FleetConfig {
        self.telemetry = true;
        self.tracing = true;
        self
    }

    /// Arms each worker's VM hot-path profiler at boot; the collapsed
    /// profile is published into the worker's telemetry at shutdown.
    pub fn with_vm_profile(mut self) -> FleetConfig {
        self.vm_profile = true;
        self
    }

    /// Overrides worker `worker`'s configuration.
    pub fn override_worker(mut self, worker: usize, ov: WorkerOverride) -> FleetConfig {
        if self.overrides.len() <= worker {
            self.overrides.resize(worker + 1, WorkerOverride::default());
        }
        self.overrides[worker] = ov;
        self
    }

    fn override_for(&self, worker: usize) -> WorkerOverride {
        self.overrides.get(worker).copied().unwrap_or_default()
    }
}

/// What went wrong inside one worker.
#[derive(Debug)]
pub enum WorkerFailure {
    /// The worker thread could not be spawned.
    Spawn(String),
    /// The worker's server failed to boot (compile/link).
    Boot(String),
    /// The worker thread died before reporting its boot outcome.
    BootChannel,
    /// The guest trapped (or a strict-mode update failed) while serving.
    Guest(String),
    /// The worker thread panicked.
    Panic,
}

impl fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerFailure::Spawn(e) => write!(f, "thread spawn failed: {e}"),
            WorkerFailure::Boot(e) => write!(f, "failed to boot: {e}"),
            WorkerFailure::BootChannel => write!(f, "died during boot"),
            WorkerFailure::Guest(e) => write!(f, "{e}"),
            WorkerFailure::Panic => write!(f, "panicked"),
        }
    }
}

/// Fleet operation failures, carrying the worker they originate from
/// (where one does) and the underlying cause.
#[derive(Debug)]
pub enum FleetError {
    /// A worker failed — at boot, while serving, or at shutdown.
    Worker {
        /// The failing worker's index.
        worker: usize,
        /// What happened to it.
        cause: WorkerFailure,
    },
    /// [`Fleet::drain`] timed out with requests still outstanding. Now
    /// that queues are sharded, the stall is attributed per queue: the
    /// shared ingress count plus each worker inbox's depth, so a single
    /// wedged worker is identifiable from the error alone.
    QueueStall {
        /// Requests still in the shared ingress queue at the deadline.
        ingress: usize,
        /// Requests still queued in each worker's edge inbox, in worker
        /// order. Empty for a shared-queue fleet (no per-worker queues).
        per_worker: Vec<usize>,
        /// Completions observed at the deadline.
        completed: usize,
        /// Completions the caller expected.
        expected: usize,
    },
    /// A rollout gave up waiting for a worker to reach an update boundary.
    RolloutStalled {
        /// The worker that never resolved its patch.
        worker: usize,
    },
    /// A rolling rollout stalled mid-fleet: some workers already serve the
    /// new version, the rest never will (the stalled worker's pending
    /// patch was withdrawn) — the fleet is left version-skewed and the
    /// caller must decide whether to retry forward or roll the updated
    /// workers back.
    PartialRollout {
        /// Workers now serving the new version.
        updated: Vec<usize>,
        /// Workers still on the old version (stalled or never reached).
        remaining: Vec<usize>,
    },
    /// A [`RolloutPolicy::Guarded`] value reached the unguarded driver —
    /// an internal dispatch bug, surfaced as a typed error instead of a
    /// panic inside a live fleet.
    MisroutedPolicy,
    /// A staged rollout pushed the cross-fleet version skew (distinct
    /// live versions minus one) past the orchestrator's configured bound.
    SkewExceeded {
        /// The skew observed at the violation.
        observed: usize,
        /// The configured bound.
        bound: usize,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Worker { worker, cause } => write!(f, "worker {worker}: {cause}"),
            FleetError::QueueStall {
                ingress,
                per_worker,
                completed,
                expected,
            } => {
                write!(f, "fleet did not drain: {ingress} ingress")?;
                if !per_worker.is_empty() {
                    write!(f, " + {per_worker:?} per-worker queued")?;
                }
                write!(f, ", {completed}/{expected} completed")
            }
            FleetError::RolloutStalled { worker } => {
                write!(f, "worker {worker} did not reach an update boundary")
            }
            FleetError::PartialRollout { updated, remaining } => write!(
                f,
                "rolling rollout stalled mid-fleet: {updated:?} updated, {remaining:?} remaining"
            ),
            FleetError::MisroutedPolicy => {
                write!(f, "guarded policy routed to the unguarded rollout driver")
            }
            FleetError::SkewExceeded { observed, bound } => {
                write!(
                    f,
                    "version skew {observed} exceeded the configured bound {bound}"
                )
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// How a patch is rolled out across the fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum RolloutPolicy {
    /// Pause every worker at its next update point, apply everywhere at
    /// once (barrier rendezvous), resume everywhere.
    Simultaneous,
    /// Apply to one worker at a time; the rest keep serving throughout.
    Rolling,
    /// Self-healing rolling rollout: update the `canary` worker first,
    /// judge its post-step health (pause SLO, error counters, completion
    /// liveness) through a [`HealthGate`], then advance worker by worker
    /// re-checking after every step; on a breach, execute `on_breach` —
    /// hold, or roll every already-updated worker back. Use
    /// [`Fleet::rollout_guarded`] to also get the
    /// [`RolloutReportCard`].
    Guarded {
        /// The worker updated (and judged) first.
        canary: usize,
        /// The update-pause budget each step is held against.
        pause_slo: PauseSlo,
        /// What to do when a step breaches.
        on_breach: BreachAction,
    },
}

/// How long an idle worker waits for control traffic before rechecking
/// the queue. Bounds both shutdown latency and the time for an idle
/// worker to join a rollout.
const IDLE_WAIT: Duration = Duration::from_micros(500);

/// How long a rollout waits for a worker to apply before giving up.
const ROLLOUT_DEADLINE: Duration = Duration::from_secs(30);

enum Ctrl {
    Shutdown,
}

pub(crate) struct Worker {
    pub(crate) id: usize,
    ctrl: mpsc::Sender<Ctrl>,
    pub(crate) remote: UpdaterRemote,
    join: JoinHandle<Result<i64, String>>,
}

/// An open fleet-wide rollout trace: the `(trace, root span)` ids every
/// worker's update spans parent under, plus when coordination began.
pub(crate) struct RolloutTrace {
    trace: u64,
    span: u64,
    began: Instant,
}

/// A running fleet of FlashEd workers over one shared request queue.
pub struct Fleet {
    shared: ServerShared,
    workers: Vec<Worker>,
    /// The version every worker booted on (the skew baseline).
    boot_version: String,
    telemetry: Option<Arc<FleetTelemetry>>,
    /// The routed front door, when configured (see [`FleetConfig::with_edge`]).
    edge: Option<Arc<Edge>>,
    /// The acceptor thread routing ingress into the edge; stopped at
    /// shutdown.
    acceptor: Option<AcceptorHandle>,
    /// How long rollouts and drains wait for a worker (see
    /// [`FleetConfig::rollout_deadline`]).
    rollout_deadline: Duration,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("workers", &self.workers.len())
            .field("shared", &self.shared)
            .finish()
    }
}

impl Fleet {
    /// Boots `n` workers, each compiling `src` and serving from one shared
    /// queue. Every worker builds its server inside its own thread (guest
    /// processes are thread-local by construction).
    ///
    /// # Errors
    ///
    /// Returns the first worker's boot error; already-started workers are
    /// shut down.
    pub fn start(
        n: usize,
        mode: LinkMode,
        src: &str,
        version: &str,
        fs: &SimFs,
    ) -> Result<Fleet, FleetError> {
        Fleet::boot(&FleetConfig::new(n).link_mode(mode), src, version, fs)
    }

    /// Like [`Fleet::start`], with telemetry: a fleet-wide lifecycle
    /// journal (events worker-tagged), per-worker labelled metrics
    /// registries, and the coordinator's version-skew gauge — scrape them
    /// through [`Fleet::telemetry`].
    ///
    /// # Errors
    ///
    /// As [`Fleet::start`].
    pub fn start_telemetry(
        n: usize,
        mode: LinkMode,
        src: &str,
        version: &str,
        fs: &SimFs,
    ) -> Result<Fleet, FleetError> {
        Fleet::boot(
            &FleetConfig::new(n).link_mode(mode).with_telemetry(),
            src,
            version,
            fs,
        )
    }

    /// Boots a fleet from a full [`FleetConfig`]: serve mode (blocking or
    /// AMPED event loop), telemetry, and per-worker overrides for device
    /// latency, cache size and concurrency window.
    ///
    /// # Errors
    ///
    /// As [`Fleet::start`].
    pub fn start_cfg(
        cfg: &FleetConfig,
        src: &str,
        version: &str,
        fs: &SimFs,
    ) -> Result<Fleet, FleetError> {
        Fleet::boot(cfg, src, version, fs)
    }

    fn boot(cfg: &FleetConfig, src: &str, version: &str, fs: &SimFs) -> Result<Fleet, FleetError> {
        let n = cfg.workers;
        assert!(n > 0, "a fleet needs at least one worker");
        let telemetry = cfg.telemetry.then(|| {
            let journal = cfg.journal.clone().unwrap_or_default();
            let tracer = cfg.tracing.then(Tracer::new);
            Arc::new(FleetTelemetry::shared(n, cfg.worker_base, journal, tracer))
        });
        let shared = ServerShared::new();
        let edge = cfg
            .edge
            .as_ref()
            .map(|ec| Arc::new(Edge::new(n, ec, shared.clone(), telemetry.clone())));
        let mut workers = Vec::with_capacity(n);
        let mut boot_err = None;
        for id in 0..n {
            let (ctrl_tx, ctrl_rx) = mpsc::channel();
            let (boot_tx, boot_rx) = mpsc::channel();
            let src = src.to_string();
            let version = version.to_string();
            let ov = cfg.override_for(id);
            let mut fs = fs.clone();
            if let Some(latency) = ov.read_latency {
                fs.set_read_latency(latency);
            }
            // Read-error faults apply to the worker's own filesystem
            // handle, before boot — content stays shared, failures don't.
            if ov.fault.read_errors {
                fs.set_read_failures(true);
            }
            let serve_mode = match cfg.serve_mode {
                ServeMode::Blocking => ServeMode::Blocking,
                ServeMode::EventLoop(mut ec) => {
                    if let Some(c) = ov.cache_entries {
                        ec.cache_entries = c;
                    }
                    if let Some(m) = ov.max_in_flight {
                        ec.max_in_flight = m;
                    }
                    ServeMode::EventLoop(ec)
                }
            };
            let mode = cfg.link_mode;
            let fault = ov.fault;
            let vm_profile = cfg.vm_profile;
            let shared_w = shared.clone();
            let tel_w = telemetry.as_ref().map(|t| t.worker(id).clone());
            let inbox_w = edge.as_ref().map(|e| Arc::clone(e.inbox(id)));
            let join = thread::Builder::new()
                .name(format!("flashed-worker-{id}"))
                .spawn(move || {
                    worker_main(
                        mode, serve_mode, src, version, fs, fault, vm_profile, shared_w, tel_w,
                        inbox_w, ctrl_rx, boot_tx,
                    )
                })
                .map_err(|e| FleetError::Worker {
                    worker: id,
                    cause: WorkerFailure::Spawn(e.to_string()),
                })?;
            match boot_rx.recv() {
                Ok(Ok(remote)) => workers.push(Worker {
                    id,
                    ctrl: ctrl_tx,
                    remote,
                    join,
                }),
                Ok(Err(e)) => {
                    boot_err = Some(FleetError::Worker {
                        worker: id,
                        cause: WorkerFailure::Boot(e),
                    });
                    let _ = join.join();
                    break;
                }
                Err(_) => {
                    boot_err = Some(FleetError::Worker {
                        worker: id,
                        cause: WorkerFailure::BootChannel,
                    });
                    let _ = join.join();
                    break;
                }
            }
        }
        if let Some(e) = boot_err {
            for w in workers {
                let _ = w.ctrl.send(Ctrl::Shutdown);
                let _ = w.join.join();
            }
            return Err(e);
        }
        if let Some(t) = &telemetry {
            t.set_live_versions(&vec![version.to_string(); n]);
        }
        let acceptor = edge.as_ref().map(Edge::start_acceptor);
        Ok(Fleet {
            shared,
            workers,
            boot_version: version.to_string(),
            telemetry,
            edge,
            acceptor,
            rollout_deadline: cfg.rollout_deadline,
        })
    }

    /// The routed front door, when this fleet was booted with
    /// [`FleetConfig::with_edge`]. Load generators submit through it
    /// directly (bypassing the acceptor) to stamp admission instants at
    /// the source.
    pub fn edge(&self) -> Option<&Arc<Edge>> {
        self.edge.as_ref()
    }

    /// The fleet's telemetry (journal, registries, skew gauge), when
    /// started through [`Fleet::start_telemetry`].
    pub fn telemetry(&self) -> Option<&FleetTelemetry> {
        self.telemetry.as_deref()
    }

    /// The workers, in id order (for the rollout orchestrator).
    pub(crate) fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// The rollout/drain deadline this fleet was configured with.
    pub(crate) fn deadline(&self) -> Duration {
        self.rollout_deadline
    }

    /// The version worker `w` is currently serving: its last successful
    /// update's target version, or the boot version.
    pub(crate) fn worker_version(&self, w: &Worker) -> String {
        w.remote
            .reports()
            .last()
            .map(|r| r.to_version.clone())
            .unwrap_or_else(|| self.boot_version.clone())
    }

    /// The version each worker currently serves, in worker order.
    pub fn live_versions(&self) -> Vec<String> {
        self.workers
            .iter()
            .map(|w| self.worker_version(w))
            .collect()
    }

    /// Recomputes the version-skew gauge from the workers' current
    /// versions (no-op without telemetry).
    pub(crate) fn refresh_skew(&self) {
        if let Some(t) = &self.telemetry {
            t.set_live_versions(&self.live_versions());
        }
    }

    /// Fleet size.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Control handle for one worker — canary a patch on a single worker,
    /// or inspect its apply history, without a fleet-wide rollout.
    pub fn remote(&self, worker: usize) -> UpdaterRemote {
        self.workers[worker].remote.clone()
    }

    /// The shared queue/completion state (clone to feed or observe the
    /// fleet from other threads).
    pub fn shared(&self) -> ServerShared {
        self.shared.clone()
    }

    /// Enqueues client requests onto the shared queue.
    pub fn push_requests<I>(&self, requests: I)
    where
        I: IntoIterator<Item = String>,
    {
        self.shared.push_requests(requests);
    }

    /// Completed responses so far, fleet-wide, in completion order.
    pub fn completions(&self) -> Vec<Completion> {
        self.shared.completions()
    }

    /// Blocks until the shared queue is empty and every pulled request has
    /// completed (`expected` = completions expected so far).
    ///
    /// # Errors
    ///
    /// Errors if the fleet does not drain within the deadline.
    pub fn drain(&self, expected: usize) -> Result<(), FleetError> {
        let deadline = Instant::now() + self.rollout_deadline;
        loop {
            let edge_queued = self.edge.as_ref().map_or(0, |e| e.queued());
            if self.shared.queue_len() == 0
                && edge_queued == 0
                && self.shared.completions_len() >= expected
            {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(FleetError::QueueStall {
                    ingress: self.shared.queue_len(),
                    per_worker: self.edge.as_ref().map_or_else(Vec::new, |e| e.depths()),
                    completed: self.shared.completions_len(),
                    expected,
                });
            }
            thread::sleep(Duration::from_micros(200));
        }
    }

    /// Rolls `patch` out to every worker under `policy`, blocking until
    /// each worker has either applied it or had it rejected. Serving
    /// continues throughout (for [`RolloutPolicy::Rolling`], completions
    /// never stop fleet-wide; for [`RolloutPolicy::Simultaneous`], the
    /// whole fleet pauses once, together). For
    /// [`RolloutPolicy::Guarded`] this delegates to
    /// [`Fleet::rollout_guarded`] and drops the report card.
    ///
    /// # Errors
    ///
    /// Errors if a worker fails to reach an update boundary within the
    /// rollout deadline (e.g. its thread died). A rolling rollout that
    /// stalls after at least one worker updated returns
    /// [`FleetError::PartialRollout`] (the stalled worker's pending patch
    /// is withdrawn first, so it cannot land later).
    pub fn rollout(
        &self,
        patch: &Patch,
        policy: RolloutPolicy,
    ) -> Result<FleetUpdateReport, FleetError> {
        match policy {
            RolloutPolicy::Guarded {
                canary,
                pause_slo,
                on_breach,
            } => self
                .rollout_guarded(patch, canary, pause_slo, on_breach)
                .map(|(report, _)| report),
            policy => self.rollout_unguarded(patch, policy),
        }
    }

    /// The [`RolloutPolicy::Simultaneous`] / [`RolloutPolicy::Rolling`]
    /// entry point: each policy is a degenerate [`RolloutPlan`] (one
    /// all-worker barrier cohort; one cohort per worker), driven by the
    /// [`crate::rollout`] orchestrator.
    fn rollout_unguarded(
        &self,
        patch: &Patch,
        policy: RolloutPolicy,
    ) -> Result<FleetUpdateReport, FleetError> {
        let plan = match policy {
            RolloutPolicy::Simultaneous => RolloutPlan::simultaneous(),
            RolloutPolicy::Rolling => RolloutPlan::rolling(),
            // A guarded policy here is a dispatch bug in the caller; a
            // typed error beats a panic inside a live fleet.
            RolloutPolicy::Guarded { .. } => return Err(FleetError::MisroutedPolicy),
        };
        self.rollout_plan(patch, &plan).map(|r| r.fleet_report)
    }

    /// Drives this fleet alone through an arbitrary [`RolloutPlan`] — a
    /// one-shard [`Orchestrator`] run with no skew bound.
    ///
    /// # Errors
    ///
    /// As [`Fleet::rollout`].
    pub fn rollout_plan(
        &self,
        patch: &Patch,
        plan: &RolloutPlan,
    ) -> Result<OrchestratorReport, FleetError> {
        Orchestrator::new(std::slice::from_ref(self)).rollout(patch, plan)
    }

    /// Opens a rollout trace: allocates `(trace, root span)` ids on the
    /// fleet tracer and propagates them to every worker, so the update
    /// spans each worker records during this rollout parent under one
    /// fleet-wide root. Returns `None` when tracing is off.
    pub(crate) fn begin_rollout_trace(&self) -> Option<RolloutTrace> {
        let tracer = self.telemetry.as_deref()?.tracer()?;
        let trace = tracer.next_trace_id();
        let span = tracer.next_span_id();
        for w in &self.workers {
            w.remote.set_span_parent(trace, span);
        }
        Some(RolloutTrace {
            trace,
            span,
            began: Instant::now(),
        })
    }

    /// Closes a rollout trace: records the root `Rollout` span (covering
    /// the whole coordination window, so every worker's update spans nest
    /// inside it) and clears the propagated context — later direct
    /// updates must not parent under a span that has ended.
    pub(crate) fn end_rollout_trace(&self, rt: Option<RolloutTrace>, patch: &Patch) {
        let Some(rt) = rt else { return };
        let Some(tracer) = self.telemetry.as_deref().and_then(FleetTelemetry::tracer) else {
            return;
        };
        for w in &self.workers {
            w.remote.clear_span_parent();
        }
        let start = tracer.since_epoch(rt.began);
        let end = tracer.now().max(start);
        tracer.record(Span {
            trace: rt.trace,
            id: rt.span,
            parent: None,
            kind: SpanKind::Rollout,
            name: "rollout",
            worker: None,
            start,
            dur: end.saturating_sub(start),
            update: None,
            request: None,
            detail: Some(format!("{}->{}", patch.from_version, patch.to_version)),
        });
    }

    /// Per-worker `(applied, failed, pauses)` counts before a rollout.
    pub(crate) fn baselines(&self) -> Vec<(usize, usize, usize)> {
        self.workers
            .iter()
            .map(|w| {
                (
                    w.remote.applied_count(),
                    w.remote.failure_count(),
                    w.remote.pauses().len(),
                )
            })
            .collect()
    }

    /// Gathers everything each worker applied/failed/paused since
    /// `baselines` into a [`FleetUpdateReport`].
    pub(crate) fn collect_report(&self, baselines: &[(usize, usize, usize)]) -> FleetUpdateReport {
        let mut report = FleetUpdateReport {
            workers: self.workers.len(),
            ..FleetUpdateReport::default()
        };
        for (w, (applied0, failed0, pauses0)) in self.workers.iter().zip(baselines) {
            for r in w.remote.reports().drain(*applied0..) {
                report.applied.push((w.id, r));
            }
            for e in w.remote.failures().drain(*failed0..) {
                report.failed.push((w.id, e));
            }
            let pause: Duration = w.remote.pauses().iter().skip(*pauses0).map(|p| p.dur).sum();
            report.pauses.push(pause);
        }
        report
    }

    /// The [`RolloutPolicy::Guarded`] driver: canary first, then worker
    /// by worker (a guarded [`RolloutPlan`] of singleton cohorts), each
    /// step judged by a [`crate::guard::HealthGate`] before the next
    /// begins. On a breach the rollout holds or rolls every updated
    /// worker back per `on_breach`. Returns the fleet report plus the
    /// run's [`RolloutReportCard`].
    ///
    /// # Errors
    ///
    /// Errors only when a *rollback* stalls (a worker that must undo
    /// cannot be reached) — forward stalls are health breaches, handled
    /// by the gate, not errors.
    pub fn rollout_guarded(
        &self,
        patch: &Patch,
        canary: usize,
        pause_slo: PauseSlo,
        on_breach: BreachAction,
    ) -> Result<(FleetUpdateReport, RolloutReportCard), FleetError> {
        assert!(canary < self.workers.len(), "canary out of range");
        let plan = RolloutPlan::guarded(canary, pause_slo, on_breach);
        self.rollout_plan(patch, &plan)
            .map(|r| (r.fleet_report, r.card))
    }

    /// Per-worker device-read-error counts (zeros untelemetered).
    pub(crate) fn read_error_counts(&self) -> Vec<u64> {
        match &self.telemetry {
            Some(t) => (0..self.workers.len())
                .map(|i| t.worker(i).read_errors())
                .collect(),
            None => vec![0; self.workers.len()],
        }
    }

    /// Waits until `worker` has resolved one more patch than its baseline.
    pub(crate) fn await_worker(
        &self,
        worker: &Worker,
        base: (usize, usize, usize),
    ) -> Result<(), FleetError> {
        self.await_worker_n(worker, base, 1)
    }

    /// Waits until `worker` has resolved `n` more patches than its
    /// baseline (a rollback *chain* resolves several in one pause).
    pub(crate) fn await_worker_n(
        &self,
        worker: &Worker,
        (applied0, failed0, _): (usize, usize, usize),
        n: usize,
    ) -> Result<(), FleetError> {
        let deadline = Instant::now() + self.rollout_deadline;
        loop {
            let resolved = worker.remote.applied_count() + worker.remote.failure_count();
            if resolved >= applied0 + failed0 + n && worker.remote.pending_count() == 0 {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(FleetError::RolloutStalled { worker: worker.id });
            }
            thread::sleep(Duration::from_micros(200));
        }
    }

    /// Stops every worker and returns the per-worker served-request counts
    /// (in worker order).
    ///
    /// # Errors
    ///
    /// Returns the first worker error (guest trap or panic), after all
    /// workers have been joined.
    pub fn shutdown(mut self) -> Result<Vec<i64>, FleetError> {
        // Stop the acceptor first: it finishes routing whatever is still
        // in the ingress queue, so workers see those requests before
        // their shutdown signal lands.
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.stop();
        }
        for w in &self.workers {
            let _ = w.ctrl.send(Ctrl::Shutdown);
        }
        let mut served = Vec::with_capacity(self.workers.len());
        let mut first_err: Option<FleetError> = None;
        for w in self.workers {
            match w.join.join() {
                Ok(Ok(n)) => served.push(n),
                Ok(Err(e)) => {
                    first_err.get_or_insert(FleetError::Worker {
                        worker: w.id,
                        cause: WorkerFailure::Guest(e),
                    });
                    served.push(0);
                }
                Err(_) => {
                    first_err.get_or_insert(FleetError::Worker {
                        worker: w.id,
                        cause: WorkerFailure::Panic,
                    });
                    served.push(0);
                }
            }
        }
        match first_err {
            None => Ok(served),
            Some(e) => Err(e),
        }
    }
}

/// One worker: boots its own server against the shared state, then serves
/// until told to shut down, applying patches fed through its remote at
/// update points (busy) or quiescent boundaries (idle).
#[allow(clippy::too_many_arguments)]
fn worker_main(
    mode: LinkMode,
    serve_mode: ServeMode,
    src: String,
    version: String,
    fs: SimFs,
    fault: FaultPlan,
    vm_profile: bool,
    shared: ServerShared,
    telemetry: Option<ServerTelemetry>,
    inbox: Option<Arc<Inbox>>,
    ctrl: mpsc::Receiver<Ctrl>,
    boot_tx: mpsc::Sender<Result<UpdaterRemote, String>>,
) -> Result<i64, String> {
    let mut server = match Server::start_routed(
        mode, serve_mode, &src, &version, fs, shared, telemetry, inbox,
    ) {
        Ok(s) => s,
        Err(e) => {
            let _ = boot_tx.send(Err(e.to_string()));
            return Err(e.to_string());
        }
    };
    // Fleet workers keep serving their old version when a patch is
    // rejected; the coordinator reads the failure out of the shared log.
    server.updater.strict = false;
    if vm_profile {
        server.set_vm_profiling(true);
    }
    if fault.delays_pauses() {
        server.inject_fault(fault);
    }
    if boot_tx.send(Ok(server.remote())).is_err() {
        return Ok(0); // coordinator went away before boot finished
    }

    // Lands the collapsed-stack VM profile (when armed) in the worker's
    // telemetry slot on the way out, success or failure.
    let finish = |server: &Server, r: Result<i64, String>| {
        server.publish_vm_profile();
        r
    };
    let mut total = 0i64;
    loop {
        match ctrl.try_recv() {
            Ok(Ctrl::Shutdown) | Err(TryRecvError::Disconnected) => {
                return finish(&server, Ok(total))
            }
            Err(TryRecvError::Empty) => {}
        }
        // A patch that arrived while the queue was empty never meets an
        // update point (the guest exits its serve loop without passing
        // one); apply it here, at the quiescent boundary. Non-strict, so
        // rejections are recorded, not returned.
        if server.updater.pending_count() > 0 {
            if let Err(e) = server.apply_pending_now() {
                return finish(&server, Err(e.to_string()));
            }
        }
        match server.serve() {
            Ok(0) => match ctrl.recv_timeout(IDLE_WAIT) {
                Ok(Ctrl::Shutdown) | Err(RecvTimeoutError::Disconnected) => {
                    return finish(&server, Ok(total))
                }
                Err(RecvTimeoutError::Timeout) => {}
            },
            Ok(n) => total += n,
            Err(e) => return finish(&server, Err(e.to_string())),
        }
    }
}
