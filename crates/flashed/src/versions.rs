//! The FlashEd development history: five Popcorn versions of the server.
//!
//! The paper evaluated DSU by pushing an updateable port of the Flash web
//! server ("FlashEd") through its actual development history while it
//! served traffic. These five versions reproduce a comparable change
//! stream, chosen so the patch sequence exercises every change category:
//!
//! * **v1 → v2** — add MIME typing: two new functions, one method-body
//!   change (level-2 additions in later taxonomies).
//! * **v2 → v3** — add a response cache: a new struct type, a new global,
//!   two new functions, one method-body change.
//! * **v3 → v4** — *representation change*: `cache_entry` gains a `hits`
//!   field, requiring a state transformer over the populated cache, plus a
//!   new statistics function (the paper's headline state-transformation
//!   scenario).
//! * **v4 → v5** — bug fix in request parsing (query-string handling) and
//!   new logging through a host function.
//!
//! The guest's `serve` loop is written in the paper's recommended style:
//! it handles only strings and dispatches through symbolic calls, with the
//! `update;` point at the bottom of each iteration — so every patch above
//! is applicable while `serve` itself is live on the stack.

/// Shared extern declarations (v5 additionally declares `log_line`).
const PREAMBLE: &str = r#"
extern fun fs_read(path: string): string;
extern fun fs_exists(path: string): bool;
extern fun next_request(): string;
extern fun send_response(r: string): unit;

global served_total: int = 0;

fun serve(): int {
    var served: int = 0;
    while (true) {
        var req: string = next_request();
        if (len(req) == 0) { break; }
        send_response(handle(req));
        served = served + 1;
        served_total = served_total + 1;
        update;
    }
    return served;
}
"#;

const PARSE_V1: &str = r#"
fun parse_path(req: string): string {
    var a: int = find(req, " ");
    if (a < 0) { return ""; }
    var rest: string = substr(req, a + 1, len(req) - a - 1);
    var b: int = find(rest, " ");
    if (b < 0) { return rest; }
    return substr(rest, 0, b);
}

fun respond(status: string, body: string): string {
    return "HTTP/1.0 " + status + "\r\nContent-Length: " + itoa(len(body)) + "\r\n\r\n" + body;
}
"#;

const MIME: &str = r#"
fun mime_of(path: string): string {
    var dot: int = find(path, ".");
    if (dot < 0) { return "application/octet-stream"; }
    var ext: string = substr(path, dot + 1, len(path) - dot - 1);
    if (ext == "html") { return "text/html"; }
    if (ext == "txt") { return "text/plain"; }
    if (ext == "css") { return "text/css"; }
    return "application/octet-stream";
}

fun respond_typed(status: string, ctype: string, body: string): string {
    return "HTTP/1.0 " + status + "\r\nContent-Type: " + ctype + "\r\nContent-Length: " + itoa(len(body)) + "\r\n\r\n" + body;
}
"#;

/// v1: basic static-file serving.
pub fn v1() -> String {
    format!(
        "{PREAMBLE}{PARSE_V1}
fun handle(req: string): string {{
    var path: string = parse_path(req);
    if (len(path) == 0) {{ return respond(\"400 Bad Request\", \"bad request\"); }}
    if (!fs_exists(path)) {{ return respond(\"404 Not Found\", \"not found\"); }}
    return respond(\"200 OK\", fs_read(path));
}}
"
    )
}

/// v2: MIME types in responses.
pub fn v2() -> String {
    format!(
        "{PREAMBLE}{PARSE_V1}{MIME}
fun handle(req: string): string {{
    var path: string = parse_path(req);
    if (len(path) == 0) {{ return respond(\"400 Bad Request\", \"bad request\"); }}
    if (!fs_exists(path)) {{ return respond(\"404 Not Found\", \"not found\"); }}
    return respond_typed(\"200 OK\", mime_of(path), fs_read(path));
}}
"
    )
}

const CACHE_V3: &str = r#"
struct cache_entry { path: string, body: string }

global cache: [cache_entry] = new [cache_entry];
global cache_cap: int = 64;

fun cache_lookup(path: string): cache_entry {
    var i: int = 0;
    while (i < len(cache)) {
        if (cache[i].path == path) { return cache[i]; }
        i = i + 1;
    }
    return null;
}

fun cache_insert(path: string, body: string): unit {
    if (len(cache) >= cache_cap) { return; }
    push(cache, cache_entry { path: path, body: body });
}
"#;

const HANDLE_CACHED: &str = r#"
fun handle(req: string): string {
    var path: string = parse_path(req);
    if (len(path) == 0) { return respond("400 Bad Request", "bad request"); }
    var e: cache_entry = cache_lookup(path);
    if (e != null) { return respond_typed("200 OK", mime_of(path), e.body); }
    if (!fs_exists(path)) { return respond("404 Not Found", "not found"); }
    var body: string = fs_read(path);
    cache_insert(path, body);
    return respond_typed("200 OK", mime_of(path), body);
}
"#;

/// v3: response cache.
pub fn v3() -> String {
    format!("{PREAMBLE}{PARSE_V1}{MIME}{CACHE_V3}{HANDLE_CACHED}")
}

const CACHE_V4: &str = r#"
struct cache_entry { path: string, body: string, hits: int }

global cache: [cache_entry] = new [cache_entry];
global cache_cap: int = 64;

fun cache_lookup(path: string): cache_entry {
    var i: int = 0;
    while (i < len(cache)) {
        if (cache[i].path == path) {
            cache[i].hits = cache[i].hits + 1;
            return cache[i];
        }
        i = i + 1;
    }
    return null;
}

fun cache_insert(path: string, body: string): unit {
    if (len(cache) >= cache_cap) { return; }
    push(cache, cache_entry { path: path, body: body, hits: 0 });
}

fun cache_hits_total(): int {
    var total: int = 0;
    var i: int = 0;
    while (i < len(cache)) {
        total = total + cache[i].hits;
        i = i + 1;
    }
    return total;
}
"#;

/// v4: cache entries gain a hit counter (type change + state transformer).
pub fn v4() -> String {
    format!("{PREAMBLE}{PARSE_V1}{MIME}{CACHE_V4}{HANDLE_CACHED}")
}

const PARSE_V5: &str = r#"
fun parse_path(req: string): string {
    var a: int = find(req, " ");
    if (a < 0) { return ""; }
    var rest: string = substr(req, a + 1, len(req) - a - 1);
    var b: int = find(rest, " ");
    var path: string = rest;
    if (b >= 0) { path = substr(rest, 0, b); }
    var q: int = find(path, "?");
    if (q >= 0) { path = substr(path, 0, q); }
    return path;
}

fun respond(status: string, body: string): string {
    return "HTTP/1.0 " + status + "\r\nContent-Length: " + itoa(len(body)) + "\r\n\r\n" + body;
}
"#;

const HANDLE_V5: &str = r#"
extern fun log_line(s: string): unit;

fun handle(req: string): string {
    var path: string = parse_path(req);
    if (len(path) == 0) { return respond("400 Bad Request", "bad request"); }
    log_line("GET " + path);
    var e: cache_entry = cache_lookup(path);
    if (e != null) { return respond_typed("200 OK", mime_of(path), e.body); }
    if (!fs_exists(path)) { return respond("404 Not Found", "not found"); }
    var body: string = fs_read(path);
    cache_insert(path, body);
    return respond_typed("200 OK", mime_of(path), body);
}
"#;

/// v5: query-string parsing fix + request logging.
pub fn v5() -> String {
    format!("{PREAMBLE}{PARSE_V5}{MIME}{CACHE_V4}{HANDLE_V5}")
}

/// All versions in order: `[("v1", src), ...]`.
pub fn all() -> Vec<(&'static str, String)> {
    vec![
        ("v1", v1()),
        ("v2", v2()),
        ("v3", v3()),
        ("v4", v4()),
        ("v5", v5()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_version_compiles_and_verifies() {
        for (name, src) in all() {
            let m = popcorn::compile(&src, "flashed", name, &popcorn::Interface::new())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            tal::verify_module(&m, &tal::NoAmbientTypes).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(m.function("serve").unwrap().has_update_point(), "{name}");
        }
    }

    #[test]
    fn version_stream_has_the_advertised_shape() {
        // v3 introduces the cache type, v4 changes it.
        let m3 = popcorn::compile(&v3(), "f", "v3", &popcorn::Interface::new()).unwrap();
        let m4 = popcorn::compile(&v4(), "f", "v4", &popcorn::Interface::new()).unwrap();
        assert_eq!(m3.type_def("cache_entry").unwrap().fields.len(), 2);
        assert_eq!(m4.type_def("cache_entry").unwrap().fields.len(), 3);
        // `serve` never touches the cache type, so type-changing patches
        // remain applicable while it is active.
        let serve = m4.function("serve").unwrap();
        assert!(!serve.referenced_types(&m4).contains("cache_entry"));
    }
}
