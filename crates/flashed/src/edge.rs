//! The FlashEd network edge: sharded admission in front of the fleet.
//!
//! Historically every fleet worker pulled from one shared
//! [`ServerShared`] queue — a single mutex all N workers contended on,
//! which hides routing and admission effects and caps scaling. This
//! module replaces that hot path with a front door:
//!
//! * **Per-worker inboxes** ([`Inbox`]) — bounded SPSC-style queues, one
//!   per worker. The acceptor is the only producer and the owning worker
//!   the only consumer, so the per-request pull path never touches a
//!   fleet-wide lock. Depth is mirrored in a lock-free atomic that both
//!   the LeastLoaded policy and the telemetry gauges read live.
//! * **Routing** ([`RoutePolicy`]) — consistent hashing over the request
//!   path (a [`HashRing`] with virtual nodes, so worker-count changes
//!   move only the keys adjacent to the new points: cache affinity
//!   survives resizes), least-loaded (live inbox depths), or round-robin.
//! * **Admission control** — every inbox is bounded. A full inbox sheds
//!   the request: the submitter gets a typed [`EdgeError::Overloaded`]
//!   (the backpressure signal a load generator throttles on) and, when
//!   [`EdgeConfig::shed_responses`] is on, the client-visible side is a
//!   synthesized HTTP 503 appended to the completion log (`pulled:
//!   false`, so latency stats skip it while drain accounting counts it).
//! * **The acceptor** — a thread draining the legacy shared ingress queue
//!   through [`Edge::submit`], so existing `push_requests` callers work
//!   unchanged. Load generators bypass it and call `submit` directly.
//!
//! Requests are stamped with their admission instant; workers propagate
//! it into [`Completion::queue_wait`], so end-to-end sojourn
//! (`queue_wait + service`) is measurable per request — the number the
//! p99 SLO in the rollout-under-load experiments is held against.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http::Response;
use crate::server::{Completion, ServerShared};
use crate::telemetry::FleetTelemetry;

/// How the edge picks a worker inbox for each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Hash the request path onto a ring of virtual nodes. Requests for
    /// one path always land on one worker (buffer-cache affinity), and a
    /// worker-count change remaps only the keys owned by the new points.
    ConsistentHash,
    /// Send each request to the shallowest inbox (live atomic depths,
    /// the same numbers the queue-depth gauges publish). Ties go to the
    /// lowest worker id.
    LeastLoaded,
    /// Rotate through workers in id order.
    RoundRobin,
}

impl fmt::Display for RoutePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutePolicy::ConsistentHash => write!(f, "consistent-hash"),
            RoutePolicy::LeastLoaded => write!(f, "least-loaded"),
            RoutePolicy::RoundRobin => write!(f, "round-robin"),
        }
    }
}

/// Admission failures, typed so generators can throttle on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeError {
    /// The routed worker's inbox was full; the request was shed (and,
    /// when configured, answered with a synthesized HTTP 503).
    Overloaded {
        /// The worker the request routed to.
        worker: usize,
        /// That worker's inbox depth at the shed.
        depth: usize,
        /// The inbox capacity.
        capacity: usize,
    },
    /// Every worker was down (see [`Edge::mark_down`]); no inbox could
    /// accept the request. Shed like an overflow.
    Unavailable,
}

impl fmt::Display for EdgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeError::Overloaded {
                worker,
                depth,
                capacity,
            } => write!(f, "worker {worker} overloaded: inbox at {depth}/{capacity}"),
            EdgeError::Unavailable => write!(f, "every worker is down"),
        }
    }
}

impl std::error::Error for EdgeError {}

/// Edge tuning: routing policy, inbox bound, shed behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeConfig {
    /// How requests map to workers.
    pub policy: RoutePolicy,
    /// Per-worker inbox capacity; a request routed to a full inbox is
    /// shed, not queued.
    pub queue_capacity: usize,
    /// Whether sheds synthesize an HTTP 503 completion (`pulled: false`)
    /// so the client-visible side of load shedding is observable in the
    /// completion log. Off, a shed is only the typed error + counters.
    pub shed_responses: bool,
    /// Virtual nodes per worker on the consistent-hash ring. More nodes
    /// smooth the key distribution; 64 keeps the worst worker within a
    /// few percent of fair share.
    pub vnodes: usize,
    /// The `Retry-After` hint rendered (in milliseconds) on synthesized
    /// 503s — how long the edge suggests a shed client wait before
    /// retrying. Closed-loop generators floor their backoff at it.
    pub retry_after_hint: Duration,
}

impl Default for EdgeConfig {
    fn default() -> EdgeConfig {
        EdgeConfig {
            policy: RoutePolicy::ConsistentHash,
            queue_capacity: 1024,
            shed_responses: true,
            vnodes: 64,
            retry_after_hint: Duration::ZERO,
        }
    }
}

impl EdgeConfig {
    /// An edge with the given routing policy and default bounds.
    pub fn new(policy: RoutePolicy) -> EdgeConfig {
        EdgeConfig {
            policy,
            ..EdgeConfig::default()
        }
    }

    /// Sets the per-worker inbox capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> EdgeConfig {
        assert!(
            capacity > 0,
            "an inbox needs capacity for at least one request"
        );
        self.queue_capacity = capacity;
        self
    }

    /// Enables or disables synthesized 503 responses on shed.
    pub fn shed_responses(mut self, on: bool) -> EdgeConfig {
        self.shed_responses = on;
        self
    }

    /// Sets the `Retry-After` hint synthesized 503s carry.
    pub fn retry_after_hint(mut self, hint: Duration) -> EdgeConfig {
        self.retry_after_hint = hint;
        self
    }
}

/// One admitted request: the raw text plus its admission stamp, which
/// the worker turns into [`Completion::queue_wait`] at pull time.
#[derive(Debug, Clone)]
pub struct Routed {
    /// The raw request text, exactly as submitted.
    pub request: String,
    /// When the edge admitted it (sojourn measurement starts here).
    pub accepted_at: Instant,
}

/// One worker's bounded inbox. The acceptor pushes, the owning worker
/// pops; the depth mirror is a lock-free atomic so routing and gauges
/// read it without taking the queue lock.
pub struct Inbox {
    q: Mutex<VecDeque<Routed>>,
    depth: AtomicUsize,
    capacity: usize,
    shed: AtomicU64,
}

impl fmt::Debug for Inbox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Inbox")
            .field("depth", &self.depth())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Inbox {
    /// An empty inbox holding at most `capacity` requests.
    pub fn new(capacity: usize) -> Inbox {
        assert!(
            capacity > 0,
            "an inbox needs capacity for at least one request"
        );
        Inbox {
            q: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            depth: AtomicUsize::new(0),
            capacity,
            shed: AtomicU64::new(0),
        }
    }

    /// Enqueues `routed` unless the inbox is full. Returns the new depth
    /// on success; on overflow the item is dropped, the shed counter
    /// bumps, and the depth at rejection comes back as the error.
    pub fn try_push(&self, routed: Routed) -> Result<usize, usize> {
        let mut q = self.q.lock().expect("poisoned");
        if q.len() >= self.capacity {
            drop(q);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(self.capacity);
        }
        q.push_back(routed);
        let depth = q.len();
        self.depth.store(depth, Ordering::Relaxed);
        Ok(depth)
    }

    /// Dequeues the oldest request, if any.
    pub fn pop(&self) -> Option<Routed> {
        let mut q = self.q.lock().expect("poisoned");
        let routed = q.pop_front();
        if routed.is_some() {
            self.depth.store(q.len(), Ordering::Relaxed);
        }
        routed
    }

    /// Requests currently queued (lock-free mirror; exact at quiescence,
    /// momentarily stale under concurrent push/pop).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests rejected at this inbox so far.
    pub fn sheds(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Fullness in `[0, 1]` — the per-worker backpressure signal.
    pub fn fullness(&self) -> f64 {
        self.depth() as f64 / self.capacity as f64
    }
}

/// FNV-1a, the key hash for ring lookups.
fn hash_key(key: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finalizer — scatters `(worker, replica)` pairs uniformly
/// around the ring.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A consistent-hash ring: each worker owns `vnodes` points; a key maps
/// to the worker owning the first point at or after its hash (wrapping).
///
/// The stability property routing relies on: growing the ring from `n`
/// to `n + 1` workers adds only worker `n`'s points, so every key whose
/// owner changes moves *to* worker `n` — no key moves between surviving
/// workers, and at most `vnodes / (total points)` of the key space moves
/// at all.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, worker)` pairs, sorted by point.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// A ring over `workers` workers with `vnodes` points each.
    pub fn new(workers: usize, vnodes: usize) -> HashRing {
        assert!(workers > 0 && vnodes > 0, "empty hash ring");
        let mut points = Vec::with_capacity(workers * vnodes);
        for w in 0..workers {
            for r in 0..vnodes {
                points.push((mix(((w as u64) << 32) | r as u64), w));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    /// The worker owning `key`.
    pub fn pick(&self, key: &str) -> usize {
        let h = hash_key(key);
        let idx = self.points.partition_point(|(p, _)| *p < h);
        self.points[idx % self.points.len()].1
    }

    /// The first worker at or after `key`'s hash for which `alive` holds
    /// — consistent-hash failover. While a worker is down its keys land
    /// on their ring *successors* (each vnode fails over independently,
    /// so the dead worker's load spreads rather than piling onto one
    /// neighbour); because the ring itself never changes, recovery
    /// restores the original ownership exactly. `None` when nothing is
    /// alive.
    pub fn pick_with<F: Fn(usize) -> bool>(&self, key: &str, alive: F) -> Option<usize> {
        let h = hash_key(key);
        let start = self.points.partition_point(|(p, _)| *p < h);
        let n = self.points.len();
        for i in 0..n {
            let (_, w) = self.points[(start + i) % n];
            if alive(w) {
                return Some(w);
            }
        }
        None
    }
}

/// The routing key for a raw request: its query-stripped path (the same
/// value [`crate::Request::path`] yields), so `/doc?a` and `/doc?b`
/// share a worker. Unparseable requests key on their full text — they
/// still route deterministically.
fn route_key(request: &str) -> &str {
    let target = match request.split(' ').nth(1) {
        Some(t) if !t.is_empty() => t,
        _ => return request,
    };
    target.split('?').next().unwrap_or(target)
}

/// How many admitted / shed a bulk submission split into.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeAdmission {
    /// Requests that landed in some worker inbox.
    pub admitted: usize,
    /// Requests rejected at a full inbox.
    pub shed: usize,
}

/// The front door: routes submissions into per-worker inboxes, sheds on
/// overflow, and keeps the live counters routing and telemetry read.
pub struct Edge {
    inboxes: Vec<Arc<Inbox>>,
    policy: RoutePolicy,
    ring: HashRing,
    rr: AtomicUsize,
    shared: ServerShared,
    shed_responses: bool,
    retry_after: Duration,
    admitted: AtomicU64,
    shed: AtomicU64,
    /// Per-worker liveness, flipped by the fleet supervisor: routing
    /// skips dead workers (consistent-hash keys fail over to their ring
    /// successors) until [`Edge::mark_up`] restores them.
    alive: Vec<AtomicBool>,
    /// Down transitions handled (each drains the dead worker's inbox
    /// back through the router).
    failovers: AtomicU64,
    telemetry: Option<Arc<FleetTelemetry>>,
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Edge")
            .field("policy", &self.policy)
            .field("workers", &self.inboxes.len())
            .field("depths", &self.depths())
            .finish()
    }
}

impl Edge {
    /// An edge over `workers` fresh inboxes, feeding completions (shed
    /// 503s) into `shared` on the fleet's clock. With `telemetry`, every
    /// admission updates the routed worker's depth gauge and every shed
    /// bumps both the worker's and the coordinator's shed counters.
    pub fn new(
        workers: usize,
        cfg: &EdgeConfig,
        shared: ServerShared,
        telemetry: Option<Arc<FleetTelemetry>>,
    ) -> Edge {
        assert!(workers > 0, "an edge needs at least one worker");
        Edge {
            inboxes: (0..workers)
                .map(|_| Arc::new(Inbox::new(cfg.queue_capacity)))
                .collect(),
            policy: cfg.policy,
            ring: HashRing::new(workers, cfg.vnodes),
            rr: AtomicUsize::new(0),
            shared,
            shed_responses: cfg.shed_responses,
            retry_after: cfg.retry_after_hint,
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            alive: (0..workers).map(|_| AtomicBool::new(true)).collect(),
            failovers: AtomicU64::new(0),
            telemetry,
        }
    }

    /// Worker `w`'s inbox (the handle its server pulls from).
    pub fn inbox(&self, w: usize) -> &Arc<Inbox> {
        &self.inboxes[w]
    }

    /// Number of worker inboxes.
    pub fn worker_count(&self) -> usize {
        self.inboxes.len()
    }

    /// The configured routing policy.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// The worker `request` would route to right now (no enqueue),
    /// skipping dead workers. For LeastLoaded this reads the live
    /// depths, so the answer can change between calls. When every worker
    /// is down this falls back to the liveness-blind pick (a preview
    /// must still answer something).
    pub fn route(&self, request: &str) -> usize {
        self.route_live(request)
            .unwrap_or_else(|| match self.policy {
                RoutePolicy::ConsistentHash => self.ring.pick(route_key(request)),
                RoutePolicy::LeastLoaded | RoutePolicy::RoundRobin => 0,
            })
    }

    /// The live routing decision: dead workers are skipped — a
    /// consistent-hash key walks to its ring successor, LeastLoaded
    /// ignores dead inboxes, RoundRobin rotates past them. `None` when
    /// every worker is down.
    fn route_live(&self, request: &str) -> Option<usize> {
        let alive = |w: usize| self.alive[w].load(Ordering::SeqCst);
        match self.policy {
            RoutePolicy::ConsistentHash => self.ring.pick_with(route_key(request), alive),
            RoutePolicy::LeastLoaded => self
                .inboxes
                .iter()
                .enumerate()
                .filter(|(i, _)| alive(*i))
                .min_by_key(|(i, b)| (b.depth(), *i))
                .map(|(i, _)| i),
            RoutePolicy::RoundRobin => {
                let n = self.inboxes.len();
                (0..n)
                    .map(|_| self.rr.fetch_add(1, Ordering::Relaxed) % n)
                    .find(|w| alive(*w))
            }
        }
    }

    /// Routes and admits one request, stamping its admission instant.
    /// Returns the worker it landed on.
    ///
    /// # Errors
    ///
    /// [`EdgeError::Overloaded`] when the routed inbox is full: the
    /// request is shed, counters bump, and (when configured) a 503
    /// completion is synthesized. The caller seeing this error *is* the
    /// backpressure signal — an open-loop generator counts it, a
    /// closed-loop one backs off.
    pub fn submit(&self, request: String) -> Result<usize, EdgeError> {
        let Some(worker) = self.route_live(&request) else {
            self.record_shed(None);
            return Err(EdgeError::Unavailable);
        };
        let routed = Routed {
            request,
            accepted_at: Instant::now(),
        };
        match self.inboxes[worker].try_push(routed) {
            Ok(depth) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = &self.telemetry {
                    t.record_edge_admitted();
                    t.worker(worker).set_edge_depth(depth);
                }
                Ok(worker)
            }
            Err(capacity) => {
                self.record_shed(Some(worker));
                Err(EdgeError::Overloaded {
                    worker,
                    depth: capacity,
                    capacity,
                })
            }
        }
    }

    /// Shed bookkeeping: counters, telemetry, and (when configured) the
    /// client-visible 503. `worker` is the inbox that rejected, when one
    /// was even reachable.
    fn record_shed(&self, worker: Option<usize>) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.record_edge_shed_total();
            if let Some(w) = worker {
                t.worker(w).record_edge_shed();
            }
        }
        if self.shed_responses {
            self.shared.push_completion(self.shed_completion());
        }
    }

    /// Submits a batch, tallying admissions and sheds.
    pub fn submit_all<I>(&self, requests: I) -> EdgeAdmission
    where
        I: IntoIterator<Item = String>,
    {
        let mut report = EdgeAdmission::default();
        for r in requests {
            match self.submit(r) {
                Ok(_) => report.admitted += 1,
                Err(_) => report.shed += 1,
            }
        }
        report
    }

    /// Takes worker `w` out of rotation (idempotent; the fleet
    /// supervisor calls this the moment it notices the worker died).
    /// Routing immediately skips it — consistent-hash keys fail over to
    /// their ring successors — and whatever its inbox still queued is
    /// drained back through the router to live workers, preserving each
    /// request's original admission stamp (sojourn keeps counting the
    /// failover delay). Requests no live inbox can hold are shed with a
    /// 503. Returns how many requests were rerouted.
    pub fn mark_down(&self, w: usize) -> usize {
        if !self.alive[w].swap(false, Ordering::SeqCst) {
            return 0; // already down; a supervisor retry sweep
        }
        self.failovers.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.record_edge_failover();
        }
        let mut rerouted = 0;
        while let Some(routed) = self.inboxes[w].pop() {
            if self.reroute(routed).is_ok() {
                rerouted += 1;
            }
        }
        if let Some(t) = &self.telemetry {
            t.worker(w).set_edge_depth(0);
        }
        rerouted
    }

    /// Puts worker `w` back in rotation. The ring never changed, so its
    /// keys return to exactly their original vnode ownership.
    pub fn mark_up(&self, w: usize) {
        self.alive[w].store(true, Ordering::SeqCst);
    }

    /// Whether worker `w` is in rotation.
    pub fn is_alive(&self, w: usize) -> bool {
        self.alive[w].load(Ordering::SeqCst)
    }

    /// Down transitions handled so far.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Re-admits an already-admitted request during failover. It is not
    /// a fresh admission, so the edge-wide admitted/shed totals stay
    /// balanced (one eventual completion per admission): a reject here
    /// synthesizes the request's 503 answer and bumps only the rejecting
    /// worker's counters — the request is answered, never silently
    /// dropped.
    fn reroute(&self, routed: Routed) -> Result<usize, EdgeError> {
        let Some(worker) = self.route_live(&routed.request) else {
            if self.shed_responses {
                self.shared.push_completion(self.shed_completion());
            }
            return Err(EdgeError::Unavailable);
        };
        match self.inboxes[worker].try_push(routed) {
            Ok(depth) => {
                if let Some(t) = &self.telemetry {
                    t.worker(worker).set_edge_depth(depth);
                }
                Ok(worker)
            }
            Err(capacity) => {
                if let Some(t) = &self.telemetry {
                    t.worker(worker).record_edge_shed();
                }
                if self.shed_responses {
                    self.shared.push_completion(self.shed_completion());
                }
                Err(EdgeError::Overloaded {
                    worker,
                    depth: capacity,
                    capacity,
                })
            }
        }
    }

    /// The client-visible face of a shed: HTTP 503, `pulled: false` (no
    /// pull to time service from), zero service — latency stats skip it,
    /// drain accounting counts it.
    fn shed_completion(&self) -> Completion {
        let body = "overloaded";
        let response = Response {
            status: 503,
            headers: vec![
                (
                    "Retry-After".to_string(),
                    self.retry_after.as_millis().to_string(),
                ),
                ("Content-Length".to_string(), body.len().to_string()),
            ],
            body: body.to_string(),
        }
        .render();
        Completion {
            at: self.shared.elapsed(),
            service: Duration::ZERO,
            update_pause: Duration::ZERO,
            queue_wait: Duration::ZERO,
            pulled: false,
            request_id: None,
            response,
        }
    }

    /// Live inbox depths, in worker order — what [`Fleet::drain`]
    /// (see [`crate::FleetError::QueueStall`]) reports per worker.
    pub fn depths(&self) -> Vec<usize> {
        self.inboxes.iter().map(|b| b.depth()).collect()
    }

    /// Total requests queued across all inboxes.
    pub fn queued(&self) -> usize {
        self.inboxes.iter().map(|b| b.depth()).sum()
    }

    /// The fullest inbox's fullness in `[0, 1]` — the edge-wide
    /// backpressure signal (1.0 means the next submission to that worker
    /// sheds).
    pub fn pressure(&self) -> f64 {
        self.inboxes
            .iter()
            .map(|b| b.fullness())
            .fold(0.0, f64::max)
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests shed so far (all workers).
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// The `Retry-After` hint synthesized 503s carry.
    pub fn retry_after_hint(&self) -> Duration {
        self.retry_after
    }

    /// Spawns the acceptor: a thread draining the shared ingress queue
    /// through [`Edge::submit`], so legacy `push_requests` traffic flows
    /// into the routed inboxes. Returns its handle; the fleet stops it
    /// at shutdown.
    pub fn start_acceptor(edge: &Arc<Edge>) -> AcceptorHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let edge = Arc::clone(edge);
        let stop_t = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("flashed-acceptor".to_string())
            .spawn(move || {
                let mut routed: u64 = 0;
                loop {
                    match edge.shared.pop_request() {
                        Some(req) => {
                            // Sheds are absorbed here (counted, 503'd);
                            // the ingress queue has no one to backpressure.
                            let _ = edge.submit(req);
                            routed += 1;
                        }
                        None => {
                            if stop_t.load(Ordering::Relaxed) {
                                return routed;
                            }
                            std::thread::sleep(Duration::from_micros(50));
                        }
                    }
                }
            })
            .expect("spawn acceptor");
        AcceptorHandle {
            stop,
            join: Some(join),
        }
    }
}

/// Handle to a running acceptor thread (see [`Edge::start_acceptor`]).
#[derive(Debug)]
pub struct AcceptorHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<u64>>,
}

impl AcceptorHandle {
    /// Stops the acceptor after it finishes draining the ingress queue;
    /// returns how many requests it routed.
    pub fn stop(mut self) -> u64 {
        self.finish()
    }

    fn finish(&mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        match self.join.take() {
            Some(j) => j.join().unwrap_or(0),
            None => 0,
        }
    }
}

impl Drop for AcceptorHandle {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_balanced() {
        let ring = HashRing::new(8, 64);
        let keys: Vec<String> = (0..4000).map(|i| format!("/doc{i}.html")).collect();
        let mut counts = [0usize; 8];
        for k in &keys {
            let w = ring.pick(k);
            assert_eq!(w, ring.pick(k), "same key, same worker");
            counts[w] += 1;
        }
        // Every worker owns a nontrivial share of the key space.
        for (w, c) in counts.iter().enumerate() {
            assert!(*c > 150, "worker {w} owns only {c}/4000 keys: {counts:?}");
        }
    }

    #[test]
    fn ring_growth_moves_keys_only_to_the_new_worker() {
        let old = HashRing::new(8, 64);
        let new = HashRing::new(9, 64);
        let mut moved = 0;
        for i in 0..4000 {
            let key = format!("/doc{i}.html");
            let (before, after) = (old.pick(&key), new.pick(&key));
            if before != after {
                assert_eq!(
                    after, 8,
                    "key {key} moved {before} -> {after}, not to the new worker"
                );
                moved += 1;
            }
        }
        // Roughly 1/9 of the space moves; well under a full reshuffle.
        assert!(moved > 0, "growth moved nothing — ring not live");
        assert!(
            moved < 4000 / 4,
            "growth moved {moved}/4000 keys — not consistent"
        );
    }

    #[test]
    fn route_key_strips_method_and_query() {
        assert_eq!(route_key("GET /doc.html HTTP/1.0"), "/doc.html");
        assert_eq!(route_key("GET /doc.html?q=1 HTTP/1.0"), "/doc.html");
        assert_eq!(route_key("BOGUS"), "BOGUS");
        assert_eq!(route_key("GET  HTTP/1.0"), "GET  HTTP/1.0");
    }

    #[test]
    fn inbox_bounds_and_counts() {
        let inbox = Inbox::new(2);
        let routed = |s: &str| Routed {
            request: s.to_string(),
            accepted_at: Instant::now(),
        };
        assert_eq!(inbox.try_push(routed("a")), Ok(1));
        assert_eq!(inbox.try_push(routed("b")), Ok(2));
        assert_eq!(inbox.try_push(routed("c")), Err(2));
        assert_eq!(inbox.depth(), 2);
        assert_eq!(inbox.sheds(), 1);
        assert!((inbox.fullness() - 1.0).abs() < f64::EPSILON);
        assert_eq!(inbox.pop().unwrap().request, "a");
        assert_eq!(inbox.depth(), 1);
        assert_eq!(inbox.try_push(routed("d")), Ok(2));
    }

    #[test]
    fn least_loaded_prefers_shallow_inboxes() {
        let edge = Edge::new(
            3,
            &EdgeConfig::new(RoutePolicy::LeastLoaded).queue_capacity(8),
            ServerShared::new(),
            None,
        );
        edge.submit("GET /a HTTP/1.0".to_string()).unwrap();
        edge.submit("GET /b HTTP/1.0".to_string()).unwrap();
        edge.submit("GET /c HTTP/1.0".to_string()).unwrap();
        // One request per worker: depths [1, 1, 1].
        assert_eq!(edge.depths(), vec![1, 1, 1]);
        // Drain worker 1; the next submission must go there.
        edge.inbox(1).pop().unwrap();
        assert_eq!(edge.route("GET /d HTTP/1.0"), 1);
    }

    #[test]
    fn round_robin_rotates() {
        let edge = Edge::new(
            3,
            &EdgeConfig::new(RoutePolicy::RoundRobin),
            ServerShared::new(),
            None,
        );
        let picks: Vec<usize> = (0..6).map(|_| edge.route("GET /x HTTP/1.0")).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn overflow_sheds_with_typed_error_and_503() {
        let shared = ServerShared::new();
        let edge = Edge::new(
            1,
            &EdgeConfig::new(RoutePolicy::RoundRobin).queue_capacity(1),
            shared.clone(),
            None,
        );
        edge.submit("GET /a HTTP/1.0".to_string()).unwrap();
        let err = edge.submit("GET /b HTTP/1.0".to_string()).unwrap_err();
        assert_eq!(
            err,
            EdgeError::Overloaded {
                worker: 0,
                depth: 1,
                capacity: 1
            }
        );
        assert_eq!(edge.shed(), 1);
        assert_eq!(edge.admitted(), 1);
        assert!((edge.pressure() - 1.0).abs() < f64::EPSILON);
        // The shed synthesized a client-visible 503, excluded from stats.
        let completions = shared.completions();
        assert_eq!(completions.len(), 1);
        assert!(!completions[0].pulled);
        let resp = crate::http::parse_response(&completions[0].response).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("0"));
    }

    #[test]
    fn failover_reroutes_queued_requests_and_recovery_restores_ownership() {
        let edge = Edge::new(
            4,
            &EdgeConfig::default().queue_capacity(64),
            ServerShared::new(),
            None,
        );
        // Find a path owned by worker 2 and queue a few requests on it.
        let req = (0..200)
            .map(|i| format!("GET /doc{i}.html HTTP/1.0"))
            .find(|r| edge.route(r) == 2)
            .expect("some key lands on worker 2");
        for _ in 0..3 {
            edge.submit(req.clone()).unwrap();
        }
        assert_eq!(edge.inbox(2).depth(), 3);

        let rerouted = edge.mark_down(2);
        assert_eq!(
            rerouted, 3,
            "queued requests drained back through the router"
        );
        assert_eq!(edge.inbox(2).depth(), 0);
        assert!(!edge.is_alive(2));
        assert_eq!(edge.failovers(), 1);
        // Idempotent: a second mark_down is a no-op.
        assert_eq!(edge.mark_down(2), 0);
        assert_eq!(edge.failovers(), 1);

        // While down, the key routes to a live successor — deterministically.
        let failover = edge.route(&req);
        assert_ne!(failover, 2);
        assert_eq!(edge.route(&req), failover);
        assert_eq!(edge.submit(req.clone()).unwrap(), failover);

        // Recovery restores the original vnode ownership exactly.
        edge.mark_up(2);
        assert!(edge.is_alive(2));
        assert_eq!(edge.route(&req), 2);
    }

    #[test]
    fn all_workers_down_sheds_with_unavailable() {
        let shared = ServerShared::new();
        let edge = Edge::new(2, &EdgeConfig::default(), shared.clone(), None);
        edge.mark_down(0);
        edge.mark_down(1);
        let err = edge.submit("GET /a HTTP/1.0".to_string()).unwrap_err();
        assert_eq!(err, EdgeError::Unavailable);
        assert_eq!(edge.shed(), 1);
        // The client still gets an answer: a synthesized 503.
        let completions = shared.completions();
        assert_eq!(completions.len(), 1);
        assert!(!completions[0].pulled);
    }

    #[test]
    fn least_loaded_and_round_robin_skip_dead_workers() {
        let edge = Edge::new(
            3,
            &EdgeConfig::new(RoutePolicy::LeastLoaded).queue_capacity(8),
            ServerShared::new(),
            None,
        );
        edge.mark_down(0);
        for _ in 0..4 {
            let w = edge.submit("GET /x HTTP/1.0".to_string()).unwrap();
            assert_ne!(w, 0, "least-loaded routed to a dead worker");
        }
        let rr = Edge::new(
            3,
            &EdgeConfig::new(RoutePolicy::RoundRobin),
            ServerShared::new(),
            None,
        );
        rr.mark_down(1);
        let picks: Vec<usize> = (0..4)
            .map(|_| rr.submit("GET /x HTTP/1.0".to_string()).unwrap())
            .collect();
        assert!(!picks.contains(&1), "round-robin routed to a dead worker");
    }

    #[test]
    fn retry_after_hint_renders_in_millis() {
        let shared = ServerShared::new();
        let edge = Edge::new(
            1,
            &EdgeConfig::new(RoutePolicy::RoundRobin)
                .queue_capacity(1)
                .retry_after_hint(Duration::from_millis(7)),
            shared.clone(),
            None,
        );
        edge.submit("GET /a HTTP/1.0".to_string()).unwrap();
        edge.submit("GET /b HTTP/1.0".to_string()).unwrap_err();
        let completions = shared.completions();
        let resp = crate::http::parse_response(&completions[0].response).unwrap();
        assert_eq!(resp.header("retry-after"), Some("7"));
    }

    #[test]
    fn consistent_hash_repeats_per_path() {
        let edge = Edge::new(4, &EdgeConfig::default(), ServerShared::new(), None);
        let w = edge.route("GET /doc7.html HTTP/1.0");
        for _ in 0..10 {
            assert_eq!(edge.route("GET /doc7.html?cache=bust HTTP/1.0"), w);
        }
    }
}
