//! Minimal HTTP/1.0 response parsing, used to validate guest output.

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Numeric status code (e.g. 200).
    pub status: u16,
    /// Header lines (name, value).
    pub headers: Vec<(String, String)>,
    /// Body bytes (as text).
    pub body: String,
}

impl Response {
    /// First value of the named header (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Parses a guest-produced response string.
///
/// Returns `None` when the status line or header block is malformed — the
/// harness treats that as a server bug.
pub fn parse_response(raw: &str) -> Option<Response> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let mut parts = status_line.splitn(3, ' ');
    let proto = parts.next()?;
    if !proto.starts_with("HTTP/") {
        return None;
    }
    let status: u16 = parts.next()?.parse().ok()?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':')?;
        let name = name.trim();
        // A line like ": value" has no header name; that's a server bug,
        // not an empty-named header.
        if name.is_empty() {
            return None;
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Some(Response {
        status,
        headers,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_well_formed_response() {
        let r = parse_response(
            "HTTP/1.0 200 OK\r\nContent-Type: text/html\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("content-type"), Some("text/html"));
        assert_eq!(r.header("Content-Length"), Some("5"));
        assert_eq!(r.body, "hello");
    }

    #[test]
    fn rejects_malformed_responses() {
        assert!(parse_response("garbage").is_none());
        assert!(parse_response("NOPE 200 OK\r\n\r\n").is_none());
        assert!(parse_response("HTTP/1.0 abc OK\r\n\r\n").is_none());
        assert!(parse_response("HTTP/1.0 200 OK\r\nbadheader\r\n\r\nx").is_none());
        // Empty header names are malformed, whether bare or padded.
        assert!(parse_response("HTTP/1.0 200 OK\r\n: value\r\n\r\nx").is_none());
        assert!(parse_response("HTTP/1.0 200 OK\r\n  : value\r\n\r\nx").is_none());
        // A status code fused with the reason phrase is rejected like any
        // other non-numeric code field.
        assert!(parse_response("HTTP/1.0 200OK\r\n\r\nx").is_none());
        assert!(parse_response("HTTP/1.0\r\n\r\nx").is_none());
    }

    #[test]
    fn body_may_contain_blank_lines() {
        let r = parse_response("HTTP/1.0 200 OK\r\n\r\na\r\n\r\nb").unwrap();
        assert_eq!(r.body, "a\r\n\r\nb");
    }
}
