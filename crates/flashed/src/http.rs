//! Minimal HTTP/1.0 parsing and rendering, both directions.
//!
//! Responses are parsed to validate guest output; requests are parsed by
//! the [`crate::edge`] front door (routing keys come from the request
//! target) and rendered by load generators. Both parsers reject an empty
//! header name the same way — a line like `: value` is a peer bug, not
//! an empty-named header.

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Numeric status code (e.g. 200).
    pub status: u16,
    /// Header lines (name, value).
    pub headers: Vec<(String, String)>,
    /// Body bytes (as text).
    pub body: String,
}

impl Response {
    /// First value of the named header (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Renders the response in wire form (status line, headers, blank
    /// line, body). The reason phrase is derived from the status code.
    pub fn render(&self) -> String {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        let mut out = format!("HTTP/1.0 {} {reason}\r\n", self.status);
        for (name, value) in &self.headers {
            out.push_str(&format!("{name}: {value}\r\n"));
        }
        out.push_str("\r\n");
        out.push_str(&self.body);
        out
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (e.g. `GET`).
    pub method: String,
    /// Request target, query string included (e.g. `/index.html?q=1`).
    pub target: String,
    /// Header lines (name, value).
    pub headers: Vec<(String, String)>,
    /// Body bytes (as text).
    pub body: String,
}

impl Request {
    /// A bare `GET` request for `target` (no headers, no body) — the
    /// shape the workload generator produces.
    pub fn get(target: &str) -> Request {
        Request {
            method: "GET".to_string(),
            target: target.to_string(),
            headers: Vec::new(),
            body: String::new(),
        }
    }

    /// First value of the named header (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The target with any query string stripped — the routing key the
    /// edge's consistent-hash policy feeds, so `/doc?q=1` and `/doc?q=2`
    /// land on the same worker (cache affinity).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Renders the request in wire form (request line, headers, blank
    /// line, body). A header-less, body-less request renders as the bare
    /// request line the guest's parser expects.
    pub fn render(&self) -> String {
        let mut out = format!("{} {} HTTP/1.0", self.method, self.target);
        if !self.headers.is_empty() || !self.body.is_empty() {
            out.push_str("\r\n");
            for (name, value) in &self.headers {
                out.push_str(&format!("{name}: {value}\r\n"));
            }
            out.push_str("\r\n");
            out.push_str(&self.body);
        }
        out
    }
}

/// Parses a client request string — the mirror of [`parse_response`].
///
/// Accepts both a full message (request line, header block, blank line,
/// body) and the bare request line the workload generator emits.
/// Returns `None` when the request line or a header is malformed (empty
/// header names rejected exactly as in [`parse_response`]).
pub fn parse_request(raw: &str) -> Option<Request> {
    let (head, body) = match raw.split_once("\r\n\r\n") {
        Some((head, body)) => (head, body),
        None => (raw, ""),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.splitn(3, ' ');
    let method = parts.next()?;
    let target = parts.next()?;
    let proto = parts.next()?;
    if method.is_empty() || target.is_empty() || !proto.starts_with("HTTP/") {
        return None;
    }
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':')?;
        let name = name.trim();
        // A line like ": value" has no header name; that's a client bug,
        // not an empty-named header.
        if name.is_empty() {
            return None;
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Some(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: body.to_string(),
    })
}

/// Parses a guest-produced response string.
///
/// Returns `None` when the status line or header block is malformed — the
/// harness treats that as a server bug.
pub fn parse_response(raw: &str) -> Option<Response> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let mut parts = status_line.splitn(3, ' ');
    let proto = parts.next()?;
    if !proto.starts_with("HTTP/") {
        return None;
    }
    let status: u16 = parts.next()?.parse().ok()?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':')?;
        let name = name.trim();
        // A line like ": value" has no header name; that's a server bug,
        // not an empty-named header.
        if name.is_empty() {
            return None;
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Some(Response {
        status,
        headers,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_well_formed_response() {
        let r = parse_response(
            "HTTP/1.0 200 OK\r\nContent-Type: text/html\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("content-type"), Some("text/html"));
        assert_eq!(r.header("Content-Length"), Some("5"));
        assert_eq!(r.body, "hello");
    }

    #[test]
    fn rejects_malformed_responses() {
        assert!(parse_response("garbage").is_none());
        assert!(parse_response("NOPE 200 OK\r\n\r\n").is_none());
        assert!(parse_response("HTTP/1.0 abc OK\r\n\r\n").is_none());
        assert!(parse_response("HTTP/1.0 200 OK\r\nbadheader\r\n\r\nx").is_none());
        // Empty header names are malformed, whether bare or padded.
        assert!(parse_response("HTTP/1.0 200 OK\r\n: value\r\n\r\nx").is_none());
        assert!(parse_response("HTTP/1.0 200 OK\r\n  : value\r\n\r\nx").is_none());
        // A status code fused with the reason phrase is rejected like any
        // other non-numeric code field.
        assert!(parse_response("HTTP/1.0 200OK\r\n\r\nx").is_none());
        assert!(parse_response("HTTP/1.0\r\n\r\nx").is_none());
    }

    #[test]
    fn body_may_contain_blank_lines() {
        let r = parse_response("HTTP/1.0 200 OK\r\n\r\na\r\n\r\nb").unwrap();
        assert_eq!(r.body, "a\r\n\r\nb");
    }

    #[test]
    fn parses_bare_and_full_requests() {
        // The workload generator's bare request line.
        let r = parse_request("GET /doc3.html HTTP/1.0").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/doc3.html");
        assert_eq!(r.path(), "/doc3.html");
        assert!(r.headers.is_empty() && r.body.is_empty());
        // Query strings stay in the target but leave the routing path.
        let r = parse_request("GET /doc3.html?q=1 HTTP/1.0").unwrap();
        assert_eq!(r.target, "/doc3.html?q=1");
        assert_eq!(r.path(), "/doc3.html");
        // A full message with headers and a body.
        let r = parse_request("POST /submit HTTP/1.0\r\nHost: a\r\nX-N: 2\r\n\r\npayload").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.header("host"), Some("a"));
        assert_eq!(r.body, "payload");
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("BOGUS").is_none());
        assert!(parse_request("GET /x").is_none());
        assert!(parse_request("GET /x NOTHTTP").is_none());
        assert!(parse_request("GET  HTTP/1.0").is_none());
        assert!(parse_request("GET /x HTTP/1.0\r\nbadheader\r\n\r\n").is_none());
        // Empty header names rejected exactly as in parse_response.
        assert!(parse_request("GET /x HTTP/1.0\r\n: value\r\n\r\n").is_none());
        assert!(parse_request("GET /x HTTP/1.0\r\n  : value\r\n\r\n").is_none());
    }

    #[test]
    fn request_render_round_trips() {
        let bare = Request::get("/doc.html?q=1");
        assert_eq!(bare.render(), "GET /doc.html?q=1 HTTP/1.0");
        assert_eq!(parse_request(&bare.render()).unwrap(), bare);
        let full = Request {
            method: "POST".to_string(),
            target: "/submit".to_string(),
            headers: vec![("Host".to_string(), "a".to_string())],
            body: "payload".to_string(),
        };
        assert_eq!(parse_request(&full.render()).unwrap(), full);
    }

    #[test]
    fn response_render_round_trips() {
        let resp = Response {
            status: 503,
            headers: vec![
                ("Retry-After".to_string(), "0".to_string()),
                ("Content-Length".to_string(), "10".to_string()),
            ],
            body: "overloaded".to_string(),
        };
        let parsed = parse_response(&resp.render()).unwrap();
        assert_eq!(parsed, resp);
        assert!(resp
            .render()
            .starts_with("HTTP/1.0 503 Service Unavailable"));
    }
}
