//! A running guest process: code store, indirection tables, globals, hosts.
//!
//! The [`Process`] is the unit the dynamic-update runtime operates on. Its
//! design mirrors the paper's updateable executables:
//!
//! * a **code store** of immutable linked functions (old versions persist,
//!   so frames already executing them finish under the old code);
//! * a **function indirection table** (GIT) of slots, one per referenced
//!   symbol name, through which all calls go under
//!   [`LinkMode::Updateable`] — rebinding a slot is how an update takes
//!   effect atomically;
//! * a **type registry** in which each registered [`TypeDef`] gets a fresh
//!   [`StructId`]; rebinding a type *name* to a new id is how a type is
//!   versioned without disturbing existing heap records;
//! * **global cells** whose value (and, across an update, type) can be
//!   swapped after state transformation.
//!
//! Linking is two-phase on purpose: [`Process::link_functions`] installs
//! code and returns planned name bindings without publishing them, and
//! [`Process::bind_function`] flips a binding. The dynamic-update runtime
//! uses the split to make the *bind* step atomic and separately measurable.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tal::{FnSig, GlobalDef, Instr, Module, SymbolKind, Ty, TypeDef, TypeProvider};

use crate::decode::{self, DOp};
use crate::interp::{exec, ExecState, ExecStats, Frame, Outcome};
use crate::ops::Op;
use crate::profile::Profiler;
use crate::trap::{LinkError, Trap};
use crate::value::{FnRef, FuncId, GlobalId, HostId, SlotId, StructId, Value};

/// How inter-procedural references are bound at link time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkMode {
    /// Bind calls directly to code (a conventional executable; cannot be
    /// updated, used as the paper's baseline).
    Static,
    /// Bind calls through indirection-table slots (an updateable
    /// executable; slots can be re-pointed by a dynamic patch).
    Updateable,
}

/// A function linked into the code store.
#[derive(Debug)]
pub struct LinkedFunction {
    /// Program-wide symbol name.
    pub name: String,
    /// Version tag of the module this function came from.
    pub version: String,
    /// Declared signature.
    pub sig: FnSig,
    /// Number of parameters (prefix of `locals`).
    pub param_count: usize,
    /// All local slot types (parameters first).
    pub locals: Vec<Ty>,
    /// Resolved code (linker output; also what the code GC scans).
    pub code: Vec<Op>,
    /// Pre-decoded threaded form of `code` — operands extracted, hot
    /// pairs fused into superinstructions, slot-call sites carrying
    /// inline caches. This is what the interpreter dispatches over.
    pub decoded: Vec<DOp>,
    /// Names of symbols this function references (for update-safety
    /// analysis: "who calls f", "who touches type T").
    pub sym_refs: Vec<String>,
    /// Names of record types this function depends on.
    pub type_names: Vec<String>,
}

/// Planned (but not yet published) name bindings returned by
/// [`Process::link_functions`].
pub type PlannedBindings = Vec<(String, FuncId)>;

/// Extra resolution context used when linking a *patch* module: names that
/// should resolve to not-yet-bound targets, and type names that should
/// resolve to specific registered layouts (old-version aliases and new
/// versions).
#[derive(Debug, Default, Clone)]
pub struct LinkOverrides {
    /// Function name → (planned target, its signature).
    pub functions: HashMap<String, (FuncId, FnSig)>,
    /// Type name → registered layout to use.
    pub types: HashMap<String, StructId>,
}

/// A host (extern) function: the embedder's side of the guest's FFI.
///
/// `Send` so a process (and the closures wired into it) can be built and
/// driven inside a worker thread — the fleet serving layer boots one
/// process per worker.
pub type HostFn = Box<dyn FnMut(&[Value]) -> Result<Value, Trap> + Send>;

pub(crate) struct HostEntry {
    pub name: String,
    pub sig: FnSig,
    pub func: HostFn,
}

impl std::fmt::Debug for HostEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HostEntry({}{})", self.name, self.sig)
    }
}

/// A global variable cell.
#[derive(Debug, Clone)]
pub struct GlobalCell {
    /// Symbol name.
    pub name: String,
    /// Current declared type (may change across an update).
    pub ty: Ty,
    /// Current value.
    pub value: Value,
    /// A pending *lazy* state transformer: when set, the next guest read
    /// of this global first runs the named function over the current
    /// value and stores the result (Javelus-style lazy migration — the
    /// alternative to the paper's eager transformation, kept for the
    /// ablation study). The flag clears *before* the transformer runs, so
    /// a transformer reading its own global sees the old value once.
    pub pending_transform: Option<FuncId>,
}

#[derive(Debug, Clone)]
pub(crate) struct StructInfo {
    /// The name the definition was registered under (diagnostics only; the
    /// *current* name binding lives in `struct_by_name`).
    pub name: String,
    pub def: TypeDef,
}

/// A snapshot of all mutable bindings, sufficient to roll back an update.
#[derive(Debug, Clone)]
pub struct BindingSnapshot {
    pub(crate) fn_by_name: HashMap<String, FuncId>,
    pub(crate) slots: Vec<Option<FuncId>>,
    pub(crate) struct_by_name: HashMap<String, StructId>,
    pub(crate) globals: Vec<GlobalCell>,
}

/// A running guest process. Single-threaded (guest values are `Rc`-based);
/// the paper's updateable programs are likewise single-threaded event loops.
#[derive(Debug)]
pub struct Process {
    mode: LinkMode,
    functions: Vec<Rc<LinkedFunction>>,
    fn_by_name: HashMap<String, FuncId>,
    slots: Vec<Option<FuncId>>,
    slot_by_name: HashMap<String, SlotId>,
    slot_names: Vec<String>,
    structs: Vec<StructInfo>,
    struct_by_name: HashMap<String, StructId>,
    globals: Vec<GlobalCell>,
    global_by_name: HashMap<String, GlobalId>,
    pub(crate) hosts: Vec<HostEntry>,
    host_by_name: HashMap<String, HostId>,
    update_requested: Arc<AtomicBool>,
    suspended: Option<ExecState>,
    /// Monotonically increasing generation bumped by every bind, unbind
    /// and rollback; inline caches validate against it, so one bump
    /// invalidates every warm call site in the program at once.
    bind_generation: u64,
    /// Whether slot-call sites may answer from their inline caches.
    /// Disabled by the benchmark harness to measure the cold per-call
    /// table-lookup path.
    icache: bool,
    /// Cumulative execution statistics.
    pub stats: ExecStats,
    /// Maximum guest call-stack depth before a [`Trap::StackOverflow`].
    pub max_stack_depth: usize,
    /// Cumulative instruction count at which execution traps with
    /// [`Trap::OutOfFuel`]; `u64::MAX` = unlimited.
    fuel_limit: u64,
    /// Opt-in hot-path profiler (`None` = disarmed, the default; the
    /// interpreter pays one pointer-null check per call/return edge).
    pub(crate) profiler: Option<Box<Profiler>>,
}

impl Process {
    /// Creates an empty process with the given link mode.
    pub fn new(mode: LinkMode) -> Process {
        Process {
            mode,
            functions: Vec::new(),
            fn_by_name: HashMap::new(),
            slots: Vec::new(),
            slot_by_name: HashMap::new(),
            slot_names: Vec::new(),
            structs: Vec::new(),
            struct_by_name: HashMap::new(),
            globals: Vec::new(),
            global_by_name: HashMap::new(),
            hosts: Vec::new(),
            host_by_name: HashMap::new(),
            update_requested: Arc::new(AtomicBool::new(false)),
            suspended: None,
            bind_generation: 1,
            icache: true,
            stats: ExecStats::default(),
            max_stack_depth: 10_000,
            fuel_limit: u64::MAX,
            profiler: None,
        }
    }

    /// Arms (or disarms) the per-function hot-path profiler. Arming
    /// starts a fresh profile; disarming discards it. See
    /// [`crate::profile::Profiler`] for what is collected.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiler = on.then(|| Box::new(Profiler::new()));
    }

    /// Whether the hot-path profiler is armed.
    pub fn profiling(&self) -> bool {
        self.profiler.is_some()
    }

    /// The armed profiler's accumulated state, if any.
    pub fn profile(&self) -> Option<&Profiler> {
        self.profiler.as_deref()
    }

    /// Collapsed-stack export of the armed profiler (`a;b;c <ops>` lines;
    /// see [`Profiler::collapsed`]). `None` when profiling is off.
    pub fn profile_collapsed(&self) -> Option<String> {
        self.profiler.as_deref().map(Profiler::collapsed)
    }

    /// Human-readable profile report ([`Profiler::report`]). `None` when
    /// profiling is off.
    pub fn profile_report(&self) -> Option<String> {
        self.profiler.as_deref().map(Profiler::report)
    }

    /// The link mode this process was created with.
    pub fn mode(&self) -> LinkMode {
        self.mode
    }

    /// Limits execution to `budget` further instructions (cumulative
    /// across runs from this point); exceeding it traps with
    /// [`Trap::OutOfFuel`]. `None` removes the limit. Runaway-loop
    /// protection for host-driven guests.
    pub fn set_fuel(&mut self, budget: Option<u64>) {
        self.fuel_limit = match budget {
            Some(b) => self.stats.instrs.saturating_add(b),
            None => u64::MAX,
        };
    }

    pub(crate) fn fuel_limit(&self) -> u64 {
        self.fuel_limit
    }

    // ---------------------------------------------------------------- hosts

    /// Registers a host (extern) function the guest can call.
    ///
    /// Re-registering a name replaces the implementation (the signature must
    /// match), which lets tests stub the environment.
    pub fn register_host(&mut self, name: impl Into<String>, sig: FnSig, func: HostFn) {
        let name = name.into();
        if let Some(&id) = self.host_by_name.get(&name) {
            let entry = &mut self.hosts[id.0 as usize];
            assert_eq!(
                entry.sig, sig,
                "host `{name}` re-registered with a different signature"
            );
            entry.func = func;
            return;
        }
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(HostEntry {
            name: name.clone(),
            sig,
            func,
        });
        self.host_by_name.insert(name, id);
    }

    /// Iterates over registered host functions (name, signature).
    pub fn host_sigs(&self) -> impl Iterator<Item = (&str, &FnSig)> {
        self.hosts.iter().map(|h| (h.name.as_str(), &h.sig))
    }

    // ---------------------------------------------------------------- types

    /// Registers a record layout, returning its fresh identity. Does *not*
    /// bind the type name; see [`Process::bind_type_name`].
    pub fn register_struct(&mut self, def: TypeDef) -> StructId {
        let id = StructId(self.structs.len() as u32);
        self.structs.push(StructInfo {
            name: def.name.clone(),
            def,
        });
        id
    }

    /// Binds (or rebinds) a type name to a registered layout.
    pub fn bind_type_name(&mut self, name: impl Into<String>, id: StructId) {
        self.struct_by_name.insert(name.into(), id);
    }

    /// Current layout bound to a type name.
    pub fn struct_id(&self, name: &str) -> Option<StructId> {
        self.struct_by_name.get(name).copied()
    }

    /// Definition of a registered layout.
    ///
    /// # Panics
    /// Panics when `id` was not returned by this process.
    pub fn struct_def(&self, id: StructId) -> &TypeDef {
        &self.structs[id.0 as usize].def
    }

    /// The name a layout was originally registered under (diagnostics; the
    /// *current* binding of a name may differ after type versioning).
    ///
    /// # Panics
    /// Panics when `id` was not returned by this process.
    pub fn struct_name(&self, id: StructId) -> &str {
        &self.structs[id.0 as usize].name
    }

    /// Iterates over the current type-name bindings.
    pub fn type_bindings(&self) -> impl Iterator<Item = (&str, StructId)> {
        self.struct_by_name.iter().map(|(n, id)| (n.as_str(), *id))
    }

    // -------------------------------------------------------------- globals

    /// Adds a new global cell.
    ///
    /// # Errors
    /// Fails with [`LinkError::Duplicate`] when the name already exists.
    pub fn add_global(
        &mut self,
        name: impl Into<String>,
        ty: Ty,
        value: Value,
    ) -> Result<GlobalId, LinkError> {
        let name = name.into();
        if self.global_by_name.contains_key(&name) {
            return Err(LinkError::Duplicate(name));
        }
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(GlobalCell {
            name: name.clone(),
            ty,
            value,
            pending_transform: None,
        });
        self.global_by_name.insert(name, id);
        Ok(id)
    }

    /// Current value of a global.
    pub fn global_value(&self, name: &str) -> Option<Value> {
        self.global_by_name
            .get(name)
            .map(|id| self.globals[id.0 as usize].value.clone())
    }

    /// Current declared type of a global.
    pub fn global_type(&self, name: &str) -> Option<&Ty> {
        self.global_by_name
            .get(name)
            .map(|id| &self.globals[id.0 as usize].ty)
    }

    /// Overwrites a global's value (type unchanged). Returns `false` when
    /// the global does not exist.
    pub fn set_global(&mut self, name: &str, value: Value) -> bool {
        match self.global_by_name.get(name) {
            Some(id) => {
                self.globals[id.0 as usize].value = value;
                true
            }
            None => false,
        }
    }

    /// Atomically retypes and overwrites a global — the *bind* step of a
    /// state-transforming update. Returns `false` when the global does not
    /// exist.
    pub fn retype_global(&mut self, name: &str, ty: Ty, value: Value) -> bool {
        match self.global_by_name.get(name) {
            Some(id) => {
                let cell = &mut self.globals[id.0 as usize];
                cell.ty = ty;
                cell.value = value;
                true
            }
            None => false,
        }
    }

    /// Arms a *lazy* state transformer on a global: the next guest read
    /// runs `transformer` over the stored value first (see
    /// [`GlobalCell::pending_transform`]). Returns `false` when the
    /// global does not exist.
    pub fn set_pending_transform(&mut self, name: &str, transformer: FuncId) -> bool {
        match self.global_by_name.get(name) {
            Some(id) => {
                self.globals[id.0 as usize].pending_transform = Some(transformer);
                true
            }
            None => false,
        }
    }

    /// Whether a lazy transform is still pending on `name`.
    pub fn has_pending_transform(&self, name: &str) -> bool {
        self.global_by_name
            .get(name)
            .is_some_and(|id| self.globals[id.0 as usize].pending_transform.is_some())
    }

    /// Iterates over all global cells.
    pub fn globals(&self) -> impl Iterator<Item = &GlobalCell> {
        self.globals.iter()
    }

    pub(crate) fn global_cell(&self, id: GlobalId) -> &GlobalCell {
        &self.globals[id.0 as usize]
    }

    pub(crate) fn global_cell_mut(&mut self, id: GlobalId) -> &mut GlobalCell {
        &mut self.globals[id.0 as usize]
    }

    /// Total approximate heap footprint of all global state, in bytes
    /// (memory-usage experiment).
    pub fn heap_size(&self) -> usize {
        self.globals.iter().map(|g| g.value.deep_size()).sum()
    }

    // ------------------------------------------------------------ functions

    /// Currently bound target of a function name.
    pub fn function_id(&self, name: &str) -> Option<FuncId> {
        self.fn_by_name.get(name).copied()
    }

    /// The linked function at `id`.
    ///
    /// # Panics
    /// Panics when `id` was not returned by this process.
    pub fn function(&self, id: FuncId) -> &Rc<LinkedFunction> {
        &self.functions[id.0 as usize]
    }

    /// Signature of the currently bound function `name`.
    pub fn function_sig(&self, name: &str) -> Option<&FnSig> {
        self.function_id(name)
            .map(|id| &self.functions[id.0 as usize].sig)
    }

    /// Iterates over the *live* interface: every currently bound function.
    pub fn bound_functions(&self) -> impl Iterator<Item = (&str, &Rc<LinkedFunction>)> {
        self.fn_by_name
            .iter()
            .map(|(n, id)| (n.as_str(), &self.functions[id.0 as usize]))
    }

    /// Number of functions ever linked (old versions included).
    pub fn code_store_len(&self) -> usize {
        self.functions.len()
    }

    /// Publishes a name binding: future symbolic calls to `name` reach
    /// `id`. Under updateable linking this re-points the GIT slot, which is
    /// the atomic switch of a dynamic update.
    pub fn bind_function(&mut self, name: &str, id: FuncId) {
        self.bind_generation += 1;
        self.fn_by_name.insert(name.to_string(), id);
        if let Some(&slot) = self.slot_by_name.get(name) {
            self.slots[slot.0 as usize] = Some(id);
        } else if self.mode == LinkMode::Updateable {
            // Create the slot eagerly so later patches can link against it.
            let slot = self.ensure_slot(name);
            self.slots[slot.0 as usize] = Some(id);
        }
    }

    /// Removes a name binding (function deletion in a patch). The code
    /// itself stays in the store for frames still executing it; the GIT
    /// slot, if any, becomes unbound and future calls through it trap.
    pub fn unbind_function(&mut self, name: &str) {
        self.bind_generation += 1;
        self.fn_by_name.remove(name);
        if let Some(&slot) = self.slot_by_name.get(name) {
            self.slots[slot.0 as usize] = None;
        }
    }

    fn ensure_slot(&mut self, name: &str) -> SlotId {
        if let Some(&s) = self.slot_by_name.get(name) {
            return s;
        }
        let id = SlotId(self.slots.len() as u32);
        self.slots.push(self.fn_by_name.get(name).copied());
        self.slot_by_name.insert(name.to_string(), id);
        self.slot_names.push(name.to_string());
        id
    }

    pub(crate) fn slot_target(&self, slot: SlotId) -> Option<FuncId> {
        self.slots[slot.0 as usize]
    }

    pub(crate) fn slot_name(&self, slot: SlotId) -> &str {
        &self.slot_names[slot.0 as usize]
    }

    /// Number of indirection-table slots (updateable mode metadata size).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Current bind generation. Bumped by every [`Process::bind_function`],
    /// [`Process::unbind_function`] and [`Process::restore`] — including
    /// those performed inside the seven-phase update pipeline — so an
    /// inline cache stamped with an older generation is stale by
    /// definition.
    pub fn bind_generation(&self) -> u64 {
        self.bind_generation
    }

    /// Enables or disables inline caching at slot-call sites. Disabling
    /// forces every updateable call back through the indirection table —
    /// the benchmarks' "updateable-cold" variant, equivalent to the
    /// pre-cache dispatch cost. Toggling bumps the generation so stale
    /// entries cannot be resurrected.
    pub fn set_inline_caching(&mut self, on: bool) {
        self.icache = on;
        self.bind_generation += 1;
    }

    pub(crate) fn inline_caching(&self) -> bool {
        self.icache
    }

    // ----------------------------------------------------------- code GC

    /// Garbage-collects the code store: function versions superseded by
    /// updates that are no longer reachable — not bound to any name, not
    /// the target of any indirection slot, not on the suspended stack, not
    /// called directly by retained code, and not held as a function value
    /// anywhere in global state — are replaced by trapping tombstones and
    /// their code freed. (The paper's linker likewise retains old code
    /// only while frames may still run it.)
    ///
    /// Snapshots taken *before* a collection may refer to collected code;
    /// restoring one afterwards can leave bindings that trap. Take fresh
    /// snapshots after collecting.
    ///
    /// Returns `(collected, retained)` counts.
    pub fn collect_code(&mut self) -> (usize, usize) {
        let mut live = vec![false; self.functions.len()];
        let mut work: Vec<FuncId> = Vec::new();
        for id in self.fn_by_name.values() {
            work.push(*id);
        }
        for slot in self.slots.iter().flatten() {
            work.push(*slot);
        }
        for cell in &self.globals {
            cell.value.for_each_fnref(&mut |r| {
                if let FnRef::Direct(id) = r {
                    work.push(id);
                }
            });
            // Armed lazy transformers are called by FuncId on first read.
            if let Some(fid) = cell.pending_transform {
                work.push(fid);
            }
        }
        // Suspended frames also hold function *values* in locals/stacks;
        // conservatively scan them.
        if let Some(st) = &self.suspended {
            for f in st.frame_codes() {
                if let Some(idx) = self.functions.iter().position(|g| Rc::ptr_eq(g, &f)) {
                    work.push(FuncId(idx as u32));
                }
            }
            for v in st.frame_values() {
                v.for_each_fnref(&mut |r| {
                    if let FnRef::Direct(id) = r {
                        work.push(id);
                    }
                });
            }
        }
        // Transitive closure over direct call/function-value targets.
        while let Some(id) = work.pop() {
            let idx = id.0 as usize;
            if live[idx] {
                continue;
            }
            live[idx] = true;
            for op in &self.functions[idx].code {
                match op {
                    crate::ops::Op::CallDirect(t) | crate::ops::Op::PushFnDirect(t)
                        if !live[t.0 as usize] =>
                    {
                        work.push(*t);
                    }
                    _ => {}
                }
            }
        }
        // A warm cache whose target is about to be tombstoned must
        // re-resolve rather than dispatch into the tombstone; flush every
        // cache and bump the generation (belt and braces — a reachable
        // target cannot be collected, but snapshots restored across a
        // collection can resurrect stale bindings). Live sites simply
        // re-resolve (one miss).
        self.bind_generation += 1;
        for f in &self.functions {
            decode::flush_caches(&f.decoded);
        }
        let mut collected = 0;
        for (idx, is_live) in live.iter().enumerate() {
            if *is_live
                || self.functions[idx]
                    .code
                    .first()
                    .is_none_or(|op| matches!(op, crate::ops::Op::Unreachable))
            {
                continue;
            }
            let code = vec![crate::ops::Op::Unreachable];
            let decoded = decode::lower(&code);
            self.functions[idx] = Rc::new(LinkedFunction {
                name: format!("<collected {}>", self.functions[idx].name),
                version: self.functions[idx].version.clone(),
                sig: self.functions[idx].sig.clone(),
                param_count: self.functions[idx].param_count,
                locals: Vec::new(),
                code,
                decoded,
                sym_refs: Vec::new(),
                type_names: Vec::new(),
            });
            collected += 1;
        }
        (collected, self.functions.len() - collected)
    }

    // ------------------------------------------------------------- snapshot

    /// Captures all mutable bindings, for rollback.
    pub fn snapshot(&self) -> BindingSnapshot {
        BindingSnapshot {
            fn_by_name: self.fn_by_name.clone(),
            slots: self.slots.clone(),
            struct_by_name: self.struct_by_name.clone(),
            globals: self.globals.clone(),
        }
    }

    /// Restores bindings captured by [`Process::snapshot`]. Code and type
    /// registrations added since remain in the stores (unreachable), exactly
    /// like aborted patches in the paper's linker.
    ///
    /// # Panics
    /// Panics if slots were created since the snapshot was taken *and* the
    /// snapshot is restored onto a process whose tables shrank, which cannot
    /// happen through the public API.
    pub fn restore(&mut self, snap: BindingSnapshot) {
        self.bind_generation += 1;
        self.fn_by_name = snap.fn_by_name;
        for (i, v) in snap.slots.iter().enumerate() {
            self.slots[i] = *v;
        }
        // Slots created after the snapshot point at patch code; unbind them.
        for i in snap.slots.len()..self.slots.len() {
            self.slots[i] = None;
        }
        self.struct_by_name = snap.struct_by_name;
        for (i, cell) in snap.globals.iter().enumerate() {
            self.globals[i] = cell.clone();
        }
    }

    // -------------------------------------------------------------- linking

    /// Verifies and loads a complete module into an empty-ish process: the
    /// initial program image. Types, globals and functions must all be new.
    ///
    /// # Errors
    /// Fails when verification fails, a name clashes with an existing
    /// definition, or a global initialiser traps.
    pub fn load_module(&mut self, m: &Module) -> Result<(), LinkError> {
        tal::verify_module(m, &ProcessTypes(self))?;
        // Types first (functions and globals may mention them).
        for def in &m.types {
            match self.struct_id(&def.name) {
                Some(existing) if self.struct_def(existing).same_structure(def) => {}
                Some(_) => return Err(LinkError::TypeConflict(def.name.clone())),
                None => {
                    let id = self.register_struct(def.clone());
                    self.bind_type_name(def.name.clone(), id);
                }
            }
        }
        for f in &m.functions {
            if self.fn_by_name.contains_key(&f.name) {
                return Err(LinkError::Duplicate(f.name.clone()));
            }
        }
        // Global cells exist (with defaults) before function linking so
        // code referencing them resolves; initialisers run after binding.
        for g in &m.globals {
            self.add_global(g.name.clone(), g.ty.clone(), Value::default_for(&g.ty))?;
        }
        let planned = self.link_functions(m, &LinkOverrides::default())?;
        for (name, id) in planned {
            self.bind_function(&name, id);
        }
        for g in &m.globals {
            let v = self
                .eval_init(m, g, &LinkOverrides::default())
                .map_err(|trap| LinkError::InitTrap {
                    name: g.name.clone(),
                    trap,
                })?;
            self.set_global(&g.name, v);
        }
        Ok(())
    }

    /// Links every function of `m` into the code store and returns the
    /// planned `(name, FuncId)` bindings **without publishing them**.
    ///
    /// Mutual references among `m`'s own functions resolve to the planned
    /// ids; other references resolve against the process's current bindings
    /// (or `overrides`). The update runtime publishes the bindings later via
    /// [`Process::bind_function`] — that separation is what makes the bind
    /// step of an update atomic.
    ///
    /// # Errors
    /// Fails when a symbol is unresolved or resolves at a different type.
    pub fn link_functions(
        &mut self,
        m: &Module,
        overrides: &LinkOverrides,
    ) -> Result<PlannedBindings, LinkError> {
        // Phase 1: reserve ids for the module's own functions.
        let mut ov = overrides.clone();
        let base = self.functions.len() as u32;
        let mut planned = Vec::with_capacity(m.functions.len());
        for (i, f) in m.functions.iter().enumerate() {
            let id = FuncId(base + i as u32);
            planned.push((f.name.clone(), id));
            ov.functions
                .entry(f.name.clone())
                .or_insert((id, f.sig.clone()));
        }
        // Phase 2: resolve and install.
        let strings: Vec<Rc<str>> = m.strings.iter().map(|s| Rc::from(s.as_str())).collect();
        for f in &m.functions {
            let code = self.resolve_code(m, &f.code, &ov, &strings)?;
            let sym_refs = f
                .referenced_symbols(m)
                .into_iter()
                .map(str::to_string)
                .collect();
            let type_names = f.referenced_types(m).into_iter().collect();
            let decoded = decode::lower(&code);
            self.functions.push(Rc::new(LinkedFunction {
                name: f.name.clone(),
                version: m.version.clone(),
                sig: f.sig.clone(),
                param_count: f.sig.params.len(),
                locals: f.locals.clone(),
                code,
                decoded,
                sym_refs,
                type_names,
            }));
        }
        Ok(planned)
    }

    /// Links and evaluates a global initialiser, returning the value.
    ///
    /// # Errors
    /// Returns the trap raised by the initialiser, or a resolution trap.
    pub fn eval_init(
        &mut self,
        m: &Module,
        g: &GlobalDef,
        overrides: &LinkOverrides,
    ) -> Result<Value, Trap> {
        let strings: Vec<Rc<str>> = m.strings.iter().map(|s| Rc::from(s.as_str())).collect();
        let code = self
            .resolve_code(m, &g.init, overrides, &strings)
            .map_err(|e| Trap::Host(e.to_string()))?;
        let decoded = decode::lower(&code);
        let f = Rc::new(LinkedFunction {
            name: format!("<init {}>", g.name),
            version: m.version.clone(),
            sig: FnSig::new(vec![], g.ty.clone()),
            param_count: 0,
            locals: Vec::new(),
            code,
            decoded,
            sym_refs: Vec::new(),
            type_names: Vec::new(),
        });
        self.call_linked(&f, Vec::new())
    }

    fn resolve_code(
        &mut self,
        m: &Module,
        code: &[Instr],
        ov: &LinkOverrides,
        strings: &[Rc<str>],
    ) -> Result<Vec<Op>, LinkError> {
        let mut out = Vec::with_capacity(code.len());
        for ins in code {
            out.push(self.resolve_instr(m, ins, ov, strings)?);
        }
        Ok(out)
    }

    fn resolve_type(
        &self,
        m: &Module,
        tr: tal::TypeRefId,
        ov: &LinkOverrides,
    ) -> Result<StructId, LinkError> {
        let name = m.type_ref(tr).expect("verified type ref");
        if let Some(&id) = ov.types.get(name) {
            return Ok(id);
        }
        self.struct_id(name).ok_or_else(|| LinkError::Unresolved {
            name: name.to_string(),
            kind: "type",
        })
    }

    /// Resolves a function symbol to a target and checks the signature.
    fn resolve_fn(
        &mut self,
        name: &str,
        want: &FnSig,
        ov: &LinkOverrides,
    ) -> Result<(FuncId, bool), LinkError> {
        let (id, found_sig) = if let Some((id, sig)) = ov.functions.get(name) {
            (*id, sig.clone())
        } else if let Some(id) = self.fn_by_name.get(name) {
            (*id, self.functions[id.0 as usize].sig.clone())
        } else {
            return Err(LinkError::Unresolved {
                name: name.to_string(),
                kind: "function",
            });
        };
        if &found_sig != want {
            return Err(LinkError::TypeMismatch {
                name: name.to_string(),
                expected: want.to_string(),
                found: found_sig.to_string(),
            });
        }
        Ok((id, self.mode == LinkMode::Updateable))
    }

    #[allow(clippy::too_many_lines)]
    fn resolve_instr(
        &mut self,
        m: &Module,
        ins: &Instr,
        ov: &LinkOverrides,
        strings: &[Rc<str>],
    ) -> Result<Op, LinkError> {
        use Instr as I;
        Ok(match ins {
            I::PushUnit => Op::PushUnit,
            I::PushInt(n) => Op::PushInt(*n),
            I::PushBool(b) => Op::PushBool(*b),
            I::PushStr(s) => Op::PushStr(Rc::clone(&strings[s.0 as usize])),
            I::PushNull(_) => Op::PushNull,
            I::PushFn(s) => {
                let sym = m.symbol(*s).expect("verified symbol");
                let SymbolKind::Fn(sig) = &sym.kind else {
                    unreachable!("verified kind")
                };
                let (id, indirect) = self.resolve_fn(&sym.name, sig, ov)?;
                if indirect {
                    Op::PushFnSlot(self.ensure_slot(&sym.name))
                } else {
                    Op::PushFnDirect(id)
                }
            }
            I::LoadLocal(n) => Op::LoadLocal(*n),
            I::StoreLocal(n) => Op::StoreLocal(*n),
            I::LoadGlobal(s) | I::StoreGlobal(s) => {
                let sym = m.symbol(*s).expect("verified symbol");
                let SymbolKind::Global(want) = &sym.kind else {
                    unreachable!("verified kind")
                };
                let id =
                    *self
                        .global_by_name
                        .get(&sym.name)
                        .ok_or_else(|| LinkError::Unresolved {
                            name: sym.name.clone(),
                            kind: "global",
                        })?;
                let found = &self.globals[id.0 as usize].ty;
                if found != want {
                    return Err(LinkError::TypeMismatch {
                        name: sym.name.clone(),
                        expected: want.to_string(),
                        found: found.to_string(),
                    });
                }
                if matches!(ins, I::LoadGlobal(_)) {
                    Op::LoadGlobal(id)
                } else {
                    Op::StoreGlobal(id)
                }
            }
            I::Dup => Op::Dup,
            I::Pop => Op::Pop,
            I::Swap => Op::Swap,
            I::Add => Op::Add,
            I::Sub => Op::Sub,
            I::Mul => Op::Mul,
            I::Div => Op::Div,
            I::Rem => Op::Rem,
            I::Neg => Op::Neg,
            I::Eq => Op::Eq,
            I::Ne => Op::Ne,
            I::Lt => Op::Lt,
            I::Le => Op::Le,
            I::Gt => Op::Gt,
            I::Ge => Op::Ge,
            I::And => Op::And,
            I::Or => Op::Or,
            I::Not => Op::Not,
            I::Concat => Op::Concat,
            I::StrLen => Op::StrLen,
            I::Substr => Op::Substr,
            I::CharAt => Op::CharAt,
            I::StrEq => Op::StrEq,
            I::StrFind => Op::StrFind,
            I::IntToStr => Op::IntToStr,
            I::StrToInt => Op::StrToInt,
            I::Jump(t) => Op::Jump(*t),
            I::JumpIfFalse(t) => Op::JumpIfFalse(*t),
            I::Call(s) => {
                let sym = m.symbol(*s).expect("verified symbol");
                let SymbolKind::Fn(sig) = &sym.kind else {
                    unreachable!("verified kind")
                };
                let (id, indirect) = self.resolve_fn(&sym.name, sig, ov)?;
                if indirect {
                    Op::CallSlot(self.ensure_slot(&sym.name))
                } else {
                    Op::CallDirect(id)
                }
            }
            I::CallIndirect => Op::CallIndirect,
            I::CallHost(s) => {
                let sym = m.symbol(*s).expect("verified symbol");
                let SymbolKind::Host(want) = &sym.kind else {
                    unreachable!("verified kind")
                };
                let id =
                    *self
                        .host_by_name
                        .get(&sym.name)
                        .ok_or_else(|| LinkError::Unresolved {
                            name: sym.name.clone(),
                            kind: "host",
                        })?;
                let found = &self.hosts[id.0 as usize].sig;
                if found != want {
                    return Err(LinkError::TypeMismatch {
                        name: sym.name.clone(),
                        expected: want.to_string(),
                        found: found.to_string(),
                    });
                }
                Op::CallHost(id, want.params.len() as u16)
            }
            I::Ret => Op::Ret,
            I::NewRecord(tr) => {
                let id = self.resolve_type(m, *tr, ov)?;
                let n = self.struct_def(id).fields.len() as u16;
                Op::NewRecord(id, n)
            }
            I::GetField(_, i) => Op::GetField(*i),
            I::SetField(_, i) => Op::SetField(*i),
            I::IsNull(_) => Op::IsNull,
            I::NewArray(_) => Op::NewArray,
            I::ArrayGet => Op::ArrayGet,
            I::ArraySet => Op::ArraySet,
            I::ArrayLen => Op::ArrayLen,
            I::ArrayPush => Op::ArrayPush,
            I::UpdatePoint => Op::UpdatePoint,
            I::Nop => Op::Nop,
        })
    }

    // ------------------------------------------------------------ execution

    /// Resolves a function value to code, following an indirection slot.
    pub(crate) fn deref_fn(&self, r: FnRef) -> Result<FuncId, Trap> {
        match r {
            FnRef::Direct(id) => Ok(id),
            FnRef::Slot(slot) => self
                .slot_target(slot)
                .ok_or_else(|| Trap::UnboundSlot(self.slot_name(slot).to_string())),
            FnRef::Unresolved => Err(Trap::UnresolvedFn),
        }
    }

    fn entry_frame(&self, name: &str, args: Vec<Value>) -> Result<Frame, Trap> {
        let id = self
            .function_id(name)
            .ok_or_else(|| Trap::NoSuchFunction(name.to_string()))?;
        let f = Rc::clone(&self.functions[id.0 as usize]);
        if f.param_count != args.len() {
            return Err(Trap::BadEntryArity {
                expected: f.param_count,
                got: args.len(),
            });
        }
        Ok(Frame::new(f, args))
    }

    /// Calls a bound function to completion. Update points inside the call
    /// are ignored (used for state transformers and direct host-driven
    /// entry points).
    ///
    /// # Errors
    /// Returns any [`Trap`] the guest raises.
    pub fn call(&mut self, name: &str, args: Vec<Value>) -> Result<Value, Trap> {
        let frame = self.entry_frame(name, args)?;
        let mut st = ExecState::with_frame(frame);
        match exec(self, &mut st, false)? {
            Outcome::Done(v) => Ok(v),
            Outcome::Suspended => unreachable!("update points disabled"),
        }
    }

    /// Calls a specific linked function (bound or not) to completion —
    /// used by the update runtime to run freshly linked state transformers
    /// before their module's names are published.
    ///
    /// # Errors
    /// Returns any [`Trap`] the guest raises.
    pub fn call_fid(&mut self, id: FuncId, args: Vec<Value>) -> Result<Value, Trap> {
        let f = Rc::clone(&self.functions[id.0 as usize]);
        self.call_linked(&f, args)
    }

    fn call_linked(&mut self, f: &Rc<LinkedFunction>, args: Vec<Value>) -> Result<Value, Trap> {
        let mut st = ExecState::with_frame(Frame::new(Rc::clone(f), args));
        match exec(self, &mut st, false)? {
            Outcome::Done(v) => Ok(v),
            Outcome::Suspended => unreachable!("update points disabled"),
        }
    }

    /// Runs a bound function, honouring update points: when an update has
    /// been requested via [`Process::request_update`] and the guest reaches
    /// an `update.point`, execution suspends with
    /// [`Outcome::Suspended`]. Apply the update, then [`Process::resume`].
    ///
    /// # Errors
    /// Returns any [`Trap`] the guest raises.
    pub fn run(&mut self, name: &str, args: Vec<Value>) -> Result<Outcome, Trap> {
        assert!(
            self.suspended.is_none(),
            "process already suspended; resume first"
        );
        let frame = self.entry_frame(name, args)?;
        let mut st = ExecState::with_frame(frame);
        let out = exec(self, &mut st, true)?;
        if matches!(out, Outcome::Suspended) {
            self.suspended = Some(st);
        }
        Ok(out)
    }

    /// Resumes a run suspended at an update point.
    ///
    /// # Errors
    /// Returns any [`Trap`] the guest raises.
    ///
    /// # Panics
    /// Panics when the process is not suspended.
    pub fn resume(&mut self) -> Result<Outcome, Trap> {
        let mut st = self.suspended.take().expect("process is suspended");
        let out = exec(self, &mut st, true)?;
        if matches!(out, Outcome::Suspended) {
            self.suspended = Some(st);
        }
        Ok(out)
    }

    /// Whether a run is currently suspended at an update point.
    pub fn is_suspended(&self) -> bool {
        self.suspended.is_some()
    }

    /// Abandons a suspended run (e.g. after a failed update in strict
    /// mode). The guest stack is dropped; the process state is otherwise
    /// untouched. No-op when not suspended.
    pub fn discard_suspended(&mut self) {
        self.suspended = None;
    }

    /// Names of the functions on the suspended guest stack, innermost last
    /// (the update runtime's *activeness check* inspects this).
    pub fn suspended_stack(&self) -> Vec<String> {
        self.suspended
            .as_ref()
            .map(|st| st.frame_functions())
            .unwrap_or_default()
    }

    /// The linked functions of the suspended guest stack's frames (old
    /// code versions included) — the update runtime's safety analysis
    /// inspects what active code can still reference.
    pub fn suspended_frames(&self) -> Vec<Rc<LinkedFunction>> {
        self.suspended
            .as_ref()
            .map(|st| st.frame_codes())
            .unwrap_or_default()
    }

    /// Requests that the next executed update point suspend the run.
    pub fn request_update(&mut self, requested: bool) {
        self.update_requested.store(requested, Ordering::SeqCst);
    }

    /// Whether an update request is pending.
    pub fn update_requested(&self) -> bool {
        self.update_requested.load(Ordering::SeqCst)
    }

    /// A clonable handle onto this process's update-request flag. Another
    /// thread can arm it so the guest suspends at its next update point —
    /// this is how a fleet coordinator interrupts a worker mid-serve
    /// without sharing the (thread-local) process itself.
    pub fn update_signal(&self) -> UpdateSignal {
        UpdateSignal(Arc::clone(&self.update_requested))
    }
}

/// A cross-thread handle onto a process's update-request flag (see
/// [`Process::update_signal`]).
#[derive(Clone, Debug)]
pub struct UpdateSignal(Arc<AtomicBool>);

impl UpdateSignal {
    /// Arms the flag: the guest suspends at its next executed update point.
    pub fn arm(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the flag is currently armed.
    pub fn armed(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// [`TypeProvider`] view of a process's current type-name bindings, used to
/// verify patch modules against the running program's types.
pub struct ProcessTypes<'a>(pub &'a Process);

impl TypeProvider for ProcessTypes<'_> {
    fn lookup_type(&self, name: &str) -> Option<&TypeDef> {
        self.0.struct_id(name).map(|id| self.0.struct_def(id))
    }
}
