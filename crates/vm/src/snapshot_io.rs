//! Serialization for [`BindingSnapshot`]s — the durable half of rollback.
//!
//! A snapshot ring that only lives in a coordinator's memory dies with the
//! coordinator; recovering a rollout mid-flight needs the retained
//! snapshots on disk. This module encodes a [`BindingSnapshot`] as one
//! line of JSON and decodes it back, with two properties the durability
//! layer relies on:
//!
//! * **Determinism** — map keys are emitted sorted, so encoding the same
//!   snapshot twice (or encoding a decoded snapshot) yields byte-identical
//!   text. Round-trip tests compare strings, not structures.
//! * **Shared substructure** — guest arrays and records are `Rc`-shared
//!   mutable objects; two globals aliasing one array must still alias one
//!   array after a decode. The encoder assigns each heap object an id at
//!   its first occurrence and emits `ref` nodes for repeats; the decoder
//!   rebuilds the aliasing from the id table. (Cycles cannot be built in
//!   the guest language, so the walk terminates.)
//!
//! The crate stays dependency-free: the JSON emitted here is simple enough
//! that a ~100-line recursive-descent reader beats pulling a serialization
//! framework into the VM.

use std::collections::HashMap;
use std::rc::Rc;

use tal::text::parse_ty;

use crate::process::{BindingSnapshot, GlobalCell};
use crate::value::{FnRef, FuncId, SlotId, StructId, Value};

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotCodecError(pub String);

impl std::fmt::Display for SnapshotCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot decode failed: {}", self.0)
    }
}

impl std::error::Error for SnapshotCodecError {}

// ------------------------------------------------------------------ encode

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Rc-pointer-keyed table assigning each shared heap object an id at its
/// first encoding.
#[derive(Default)]
struct ShareTable {
    ids: HashMap<*const (), u64>,
    next: u64,
}

impl ShareTable {
    /// `Ok(id)` on first sight, `Err(id)` for a repeat.
    fn visit(&mut self, ptr: *const ()) -> Result<u64, u64> {
        match self.ids.get(&ptr) {
            Some(&id) => Err(id),
            None => {
                self.next += 1;
                self.ids.insert(ptr, self.next);
                Ok(self.next)
            }
        }
    }
}

fn encode_value(v: &Value, shares: &mut ShareTable, out: &mut String) {
    match v {
        Value::Unit => out.push_str("{\"t\":\"unit\"}"),
        Value::Int(n) => out.push_str(&format!("{{\"t\":\"int\",\"v\":{n}}}")),
        Value::Bool(b) => out.push_str(&format!("{{\"t\":\"bool\",\"v\":{b}}}")),
        Value::Str(s) => out.push_str(&format!("{{\"t\":\"str\",\"v\":\"{}\"}}", escape(s))),
        Value::Null => out.push_str("{\"t\":\"null\"}"),
        Value::Fn(FnRef::Unresolved) => out.push_str("{\"t\":\"fn\"}"),
        Value::Fn(FnRef::Direct(id)) => {
            out.push_str(&format!("{{\"t\":\"fn\",\"direct\":{}}}", id.0))
        }
        Value::Fn(FnRef::Slot(id)) => out.push_str(&format!("{{\"t\":\"fn\",\"slot\":{}}}", id.0)),
        Value::Array(a) => match shares.visit(Rc::as_ptr(a).cast()) {
            Err(id) => out.push_str(&format!("{{\"t\":\"ref\",\"id\":{id}}}")),
            Ok(id) => {
                out.push_str(&format!("{{\"t\":\"arr\",\"id\":{id},\"v\":["));
                for (i, e) in a.borrow().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_value(e, shares, out);
                }
                out.push_str("]}");
            }
        },
        Value::Record(r) => match shares.visit(Rc::as_ptr(r).cast()) {
            Err(id) => out.push_str(&format!("{{\"t\":\"ref\",\"id\":{id}}}")),
            Ok(id) => {
                out.push_str(&format!(
                    "{{\"t\":\"rec\",\"id\":{id},\"sid\":{},\"v\":[",
                    r.struct_id.0
                ));
                for (i, e) in r.fields.borrow().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_value(e, shares, out);
                }
                out.push_str("]}");
            }
        },
    }
}

/// Encodes a snapshot as a single line of JSON (no interior newlines —
/// embedders store one snapshot per line).
pub fn encode_snapshot(snap: &BindingSnapshot) -> String {
    let mut shares = ShareTable::default();
    let mut out = String::from("{\"fns\":{");
    let mut fns: Vec<(&String, &FuncId)> = snap.fn_by_name.iter().collect();
    fns.sort();
    for (i, (name, id)) in fns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape(name), id.0));
    }
    out.push_str("},\"slots\":[");
    for (i, s) in snap.slots.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match s {
            Some(id) => out.push_str(&id.0.to_string()),
            None => out.push_str("null"),
        }
    }
    out.push_str("],\"structs\":{");
    let mut structs: Vec<(&String, &StructId)> = snap.struct_by_name.iter().collect();
    structs.sort();
    for (i, (name, id)) in structs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape(name), id.0));
    }
    out.push_str("},\"globals\":[");
    for (i, g) in snap.globals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ty\":\"{}\",\"value\":",
            escape(&g.name),
            escape(&g.ty.to_string()),
        ));
        encode_value(&g.value, &mut shares, &mut out);
        if let Some(x) = g.pending_transform {
            out.push_str(&format!(",\"xform\":{}", x.0));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

// ------------------------------------------------------------------ decode

/// The snapshot JSON as a tree. Numbers are integers only — that is all
/// the encoder emits.
enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_int(&self, what: &str) -> Result<i64, SnapshotCodecError> {
        match self {
            Json::Int(n) => Ok(*n),
            _ => Err(SnapshotCodecError(format!("{what}: expected number"))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, SnapshotCodecError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(SnapshotCodecError(format!("{what}: expected string"))),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], SnapshotCodecError> {
        match self {
            Json::Arr(v) => Ok(v),
            _ => Err(SnapshotCodecError(format!("{what}: expected array"))),
        }
    }

    fn as_obj(&self, what: &str) -> Result<&[(String, Json)], SnapshotCodecError> {
        match self {
            Json::Obj(v) => Ok(v),
            _ => Err(SnapshotCodecError(format!("{what}: expected object"))),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> SnapshotCodecError {
        SnapshotCodecError(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), SnapshotCodecError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, SnapshotCodecError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &str, v: Json) -> Result<Json, SnapshotCodecError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Json, SnapshotCodecError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|e| self.err(&format!("bad number `{text}`: {e}")))
    }

    fn string(&mut self) -> Result<String, SnapshotCodecError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, SnapshotCodecError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.eat(b']') {
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            if self.eat(b']') {
                return Ok(Json::Arr(out));
            }
            self.expect(b',')?;
        }
    }

    fn object(&mut self) -> Result<Json, SnapshotCodecError> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        if self.eat(b'}') {
            return Ok(Json::Obj(out));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            out.push((key, self.value()?));
            if self.eat(b'}') {
                return Ok(Json::Obj(out));
            }
            self.expect(b',')?;
        }
    }
}

fn decode_value(j: &Json, shares: &mut HashMap<u64, Value>) -> Result<Value, SnapshotCodecError> {
    let tag = j
        .get("t")
        .ok_or_else(|| SnapshotCodecError("value without a `t` tag".to_string()))?
        .as_str("value tag")?;
    match tag {
        "unit" => Ok(Value::Unit),
        "null" => Ok(Value::Null),
        "int" => Ok(Value::Int(
            j.get("v")
                .ok_or_else(|| SnapshotCodecError("int without v".to_string()))?
                .as_int("int")?,
        )),
        "bool" => match j.get("v") {
            Some(Json::Bool(b)) => Ok(Value::Bool(*b)),
            _ => Err(SnapshotCodecError("bool without v".to_string())),
        },
        "str" => Ok(Value::str(
            j.get("v")
                .ok_or_else(|| SnapshotCodecError("str without v".to_string()))?
                .as_str("str")?,
        )),
        "fn" => {
            if let Some(d) = j.get("direct") {
                Ok(Value::Fn(FnRef::Direct(FuncId(d.as_int("fn")? as u32))))
            } else if let Some(s) = j.get("slot") {
                Ok(Value::Fn(FnRef::Slot(SlotId(s.as_int("fn")? as u32))))
            } else {
                Ok(Value::Fn(FnRef::Unresolved))
            }
        }
        "ref" => {
            let id = j
                .get("id")
                .ok_or_else(|| SnapshotCodecError("ref without id".to_string()))?
                .as_int("ref id")? as u64;
            shares
                .get(&id)
                .cloned()
                .ok_or_else(|| SnapshotCodecError(format!("ref to unseen object {id}")))
        }
        "arr" => {
            let id = j
                .get("id")
                .ok_or_else(|| SnapshotCodecError("arr without id".to_string()))?
                .as_int("arr id")? as u64;
            // Register before decoding elements so nested refs resolve
            // (repeats inside the same array share the one object).
            let arr = Value::empty_array();
            shares.insert(id, arr.clone());
            let elems = j
                .get("v")
                .ok_or_else(|| SnapshotCodecError("arr without v".to_string()))?
                .as_arr("arr")?;
            let Value::Array(cell) = &arr else {
                unreachable!()
            };
            for e in elems {
                let v = decode_value(e, shares)?;
                cell.borrow_mut().push(v);
            }
            Ok(arr)
        }
        "rec" => {
            let id = j
                .get("id")
                .ok_or_else(|| SnapshotCodecError("rec without id".to_string()))?
                .as_int("rec id")? as u64;
            let sid = j
                .get("sid")
                .ok_or_else(|| SnapshotCodecError("rec without sid".to_string()))?
                .as_int("rec sid")? as u32;
            let rec = Value::record(StructId(sid), Vec::new());
            shares.insert(id, rec.clone());
            let elems = j
                .get("v")
                .ok_or_else(|| SnapshotCodecError("rec without v".to_string()))?
                .as_arr("rec")?;
            let Value::Record(obj) = &rec else {
                unreachable!()
            };
            for e in elems {
                let v = decode_value(e, shares)?;
                obj.fields.borrow_mut().push(v);
            }
            Ok(rec)
        }
        other => Err(SnapshotCodecError(format!("unknown value tag `{other}`"))),
    }
}

/// Decodes a snapshot previously produced by [`encode_snapshot`].
///
/// # Errors
///
/// Returns a [`SnapshotCodecError`] describing the first malformed node.
pub fn decode_snapshot(text: &str) -> Result<BindingSnapshot, SnapshotCodecError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after snapshot"));
    }

    let mut fn_by_name = HashMap::new();
    for (name, id) in root
        .get("fns")
        .ok_or_else(|| SnapshotCodecError("missing fns".to_string()))?
        .as_obj("fns")?
    {
        fn_by_name.insert(name.clone(), FuncId(id.as_int("fn id")? as u32));
    }

    let mut slots = Vec::new();
    for s in root
        .get("slots")
        .ok_or_else(|| SnapshotCodecError("missing slots".to_string()))?
        .as_arr("slots")?
    {
        slots.push(match s {
            Json::Null => None,
            other => Some(FuncId(other.as_int("slot")? as u32)),
        });
    }

    let mut struct_by_name = HashMap::new();
    for (name, id) in root
        .get("structs")
        .ok_or_else(|| SnapshotCodecError("missing structs".to_string()))?
        .as_obj("structs")?
    {
        struct_by_name.insert(name.clone(), StructId(id.as_int("struct id")? as u32));
    }

    let mut shares = HashMap::new();
    let mut globals = Vec::new();
    for g in root
        .get("globals")
        .ok_or_else(|| SnapshotCodecError("missing globals".to_string()))?
        .as_arr("globals")?
    {
        let name = g
            .get("name")
            .ok_or_else(|| SnapshotCodecError("global without name".to_string()))?
            .as_str("global name")?
            .to_string();
        let ty_text = g
            .get("ty")
            .ok_or_else(|| SnapshotCodecError("global without ty".to_string()))?
            .as_str("global ty")?;
        let ty = parse_ty(ty_text)
            .map_err(|e| SnapshotCodecError(format!("global `{name}` type: {e}")))?;
        let value = decode_value(
            g.get("value")
                .ok_or_else(|| SnapshotCodecError(format!("global `{name}` without value")))?,
            &mut shares,
        )?;
        let pending_transform = match g.get("xform") {
            Some(x) => Some(FuncId(x.as_int("xform")? as u32)),
            None => None,
        };
        globals.push(GlobalCell {
            name,
            ty,
            value,
            pending_transform,
        });
    }

    Ok(BindingSnapshot {
        fn_by_name,
        slots,
        struct_by_name,
        globals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tal::Ty;

    fn cell(name: &str, ty: Ty, value: Value) -> GlobalCell {
        GlobalCell {
            name: name.to_string(),
            ty,
            value,
            pending_transform: None,
        }
    }

    fn sample() -> BindingSnapshot {
        let shared = Value::array(vec![Value::Int(1), Value::str("x\"y\n")]);
        let rec = Value::record(
            StructId(3),
            vec![shared.clone(), Value::Fn(FnRef::Slot(SlotId(2)))],
        );
        BindingSnapshot {
            fn_by_name: [
                ("serve".to_string(), FuncId(4)),
                ("log".to_string(), FuncId(9)),
            ]
            .into_iter()
            .collect(),
            slots: vec![Some(FuncId(4)), None, Some(FuncId(9))],
            struct_by_name: [("conn".to_string(), StructId(3))].into_iter().collect(),
            globals: vec![
                cell("hits", Ty::Int, Value::Int(42)),
                cell("buf", Ty::array(Ty::Int), shared.clone()),
                GlobalCell {
                    name: "conn0".to_string(),
                    ty: Ty::named("conn"),
                    value: rec,
                    pending_transform: Some(FuncId(7)),
                },
                cell("alias", Ty::array(Ty::Int), shared),
            ],
        }
    }

    #[test]
    fn round_trip_is_deterministic_and_structural() {
        let snap = sample();
        let text = encode_snapshot(&snap);
        assert!(!text.contains('\n'), "one line: {text}");
        let back = decode_snapshot(&text).unwrap();
        assert_eq!(back.fn_by_name, snap.fn_by_name);
        assert_eq!(back.slots, snap.slots);
        assert_eq!(back.struct_by_name, snap.struct_by_name);
        assert_eq!(back.globals.len(), snap.globals.len());
        for (a, b) in back.globals.iter().zip(&snap.globals) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.ty, b.ty);
            assert_eq!(a.value, b.value);
            assert_eq!(a.pending_transform, b.pending_transform);
        }
        // Deterministic: re-encoding the decode reproduces the bytes.
        assert_eq!(encode_snapshot(&back), text);
    }

    #[test]
    fn aliasing_survives_the_round_trip() {
        let text = encode_snapshot(&sample());
        let back = decode_snapshot(&text).unwrap();
        // globals[1] ("buf") and globals[3] ("alias") share one array, and
        // the record in globals[2] holds the same one: mutating through
        // one handle must be visible through the others.
        let Value::Array(buf) = &back.globals[1].value else {
            panic!("buf decoded as non-array")
        };
        buf.borrow_mut().push(Value::Int(99));
        let Value::Array(alias) = &back.globals[3].value else {
            panic!("alias decoded as non-array")
        };
        assert_eq!(alias.borrow().len(), 3);
        let Value::Record(rec) = &back.globals[2].value else {
            panic!("conn0 decoded as non-record")
        };
        let fields = rec.fields.borrow();
        let Value::Array(inner) = &fields[0] else {
            panic!("record field decoded as non-array")
        };
        assert_eq!(inner.borrow().len(), 3);
    }

    #[test]
    fn live_process_snapshot_round_trips() {
        use crate::process::{LinkMode, Process};
        use tal::{FnSig, Instr, ModuleBuilder};

        let mut b = ModuleBuilder::new("m", "v1");
        b.global("counter", Ty::Int, vec![Instr::PushInt(7), Instr::Ret]);
        b.function("f", FnSig::new(vec![], Ty::Int), |f| {
            f.emit(Instr::PushInt(1));
            f.emit(Instr::Ret);
        });
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&b.finish()).unwrap();
        let snap = p.snapshot();
        let text = encode_snapshot(&snap);
        let back = decode_snapshot(&text).unwrap();
        assert_eq!(encode_snapshot(&back), text);
        // The decoded snapshot is restorable.
        p.set_global("counter", Value::Int(100));
        p.restore(back);
        assert_eq!(p.global_value("counter"), Some(Value::Int(7)));
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "[1,2]",
            "{\"fns\":{}}",
            "{\"fns\":{},\"slots\":[],\"structs\":{},\"globals\":[{\"name\":\"g\",\"ty\":\"??\",\"value\":{\"t\":\"int\",\"v\":1}}]}",
            "{\"fns\":{},\"slots\":[],\"structs\":{},\"globals\":[{\"name\":\"g\",\"ty\":\"int\",\"value\":{\"t\":\"ref\",\"id\":5}}]}",
        ] {
            assert!(decode_snapshot(bad).is_err(), "{bad}");
        }
    }
}
