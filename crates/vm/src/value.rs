//! Runtime values.
//!
//! Values are reference-counted; records and arrays are shared mutable heap
//! objects (the guest language has C-like aliasing). Every record carries
//! the [`StructId`] it was allocated with, which is how two *versions* of a
//! source-level type coexist in one heap after a dynamic update: old records
//! keep their old layout identity until a state transformer rebuilds them.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use tal::Ty;

/// Identity of a registered record-type layout (one per registered
/// [`tal::TypeDef`], including per version).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(pub u32);

/// Identity of a linked function in the process code store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identity of a function indirection-table (GIT) slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u32);

/// Identity of a global-variable cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Identity of a registered host (extern) function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// A heap-allocated record instance.
#[derive(Debug)]
pub struct RecordObj {
    /// The layout the record was allocated with.
    pub struct_id: StructId,
    /// Field values, in declaration order of that layout.
    pub fields: RefCell<Vec<Value>>,
}

/// How a first-class function value refers to code.
///
/// Under *updateable* linking the value holds an indirection-table slot, so
/// a stored function pointer transparently picks up the new version after an
/// update — exactly the behaviour the paper gets from routing function
/// pointers through the dynamic linker's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FnRef {
    /// No target yet (default value of a function-typed local); calling
    /// traps, like an uninitialised C function pointer, without breaking
    /// memory safety.
    Unresolved,
    /// Fixed code target (static linking).
    Direct(FuncId),
    /// Current occupant of an indirection-table slot (updateable linking).
    Slot(SlotId),
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// The unit value.
    Unit,
    /// 64-bit integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Immutable string.
    Str(Rc<str>),
    /// Shared growable array.
    Array(Rc<RefCell<Vec<Value>>>),
    /// Shared record instance.
    Record(Rc<RecordObj>),
    /// The null reference (inhabits every named record type).
    Null,
    /// First-class function.
    Fn(FnRef),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Creates an empty array value.
    pub fn empty_array() -> Value {
        Value::Array(Rc::new(RefCell::new(Vec::new())))
    }

    /// Creates an array value from elements.
    pub fn array(elems: Vec<Value>) -> Value {
        Value::Array(Rc::new(RefCell::new(elems)))
    }

    /// Creates a record value with the given layout and fields.
    pub fn record(struct_id: StructId, fields: Vec<Value>) -> Value {
        Value::Record(Rc::new(RecordObj {
            struct_id,
            fields: RefCell::new(fields),
        }))
    }

    /// The default value a local slot of type `ty` starts with.
    pub fn default_for(ty: &Ty) -> Value {
        thread_local! {
            static EMPTY_STR: Rc<str> = Rc::from("");
        }
        match ty {
            Ty::Unit => Value::Unit,
            Ty::Int => Value::Int(0),
            Ty::Bool => Value::Bool(false),
            Ty::Str => Value::Str(EMPTY_STR.with(Rc::clone)),
            Ty::Array(_) => Value::empty_array(),
            Ty::Named(_) => Value::Null,
            Ty::Fn(_) => Value::Fn(FnRef::Unresolved),
        }
    }

    /// Integer payload.
    ///
    /// # Panics
    /// Panics when the value is not an `Int`; verified code never does this.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(n) => *n,
            other => panic!("expected int, found {other:?}"),
        }
    }

    /// Boolean payload (panics on type confusion, which verified code rules out).
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected bool, found {other:?}"),
        }
    }

    /// String payload (panics on type confusion, which verified code rules out).
    pub fn as_str(&self) -> Rc<str> {
        match self {
            Value::Str(s) => Rc::clone(s),
            other => panic!("expected string, found {other:?}"),
        }
    }

    /// Approximate heap footprint in bytes of this value, following
    /// references (shared substructure is counted each time it is reached;
    /// cycles are impossible to build in the guest language through `new`
    /// expressions alone, and depth is bounded for the measured workloads).
    /// Used by the memory-usage experiment.
    pub fn deep_size(&self) -> usize {
        match self {
            Value::Unit | Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Null | Value::Fn(_) => 8,
            Value::Str(s) => 16 + s.len(),
            Value::Array(a) => 16 + a.borrow().iter().map(Value::deep_size).sum::<usize>(),
            Value::Record(r) => {
                16 + r
                    .fields
                    .borrow()
                    .iter()
                    .map(Value::deep_size)
                    .sum::<usize>()
            }
        }
    }
}

impl Value {
    /// Invokes `f` on every function reference reachable from this value,
    /// following arrays and records (cycle-safe). Used by the code-store
    /// garbage collector to find live code targets held in the heap.
    pub fn for_each_fnref(&self, f: &mut impl FnMut(FnRef)) {
        let mut seen: std::collections::HashSet<*const ()> = std::collections::HashSet::new();
        self.walk_fnrefs(f, &mut seen);
    }

    fn walk_fnrefs(
        &self,
        f: &mut impl FnMut(FnRef),
        seen: &mut std::collections::HashSet<*const ()>,
    ) {
        match self {
            Value::Fn(r) => f(*r),
            Value::Array(a) if seen.insert(Rc::as_ptr(a).cast()) => {
                for v in a.borrow().iter() {
                    v.walk_fnrefs(f, seen);
                }
            }
            Value::Record(r) if seen.insert(Rc::as_ptr(r).cast()) => {
                for v in r.fields.borrow().iter() {
                    v.walk_fnrefs(f, seen);
                }
            }
            _ => {}
        }
    }
}

impl PartialEq for Value {
    /// Structural equality (arrays and records compare by contents), used by
    /// tests and state-transformer assertions.
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Null, Value::Null) => true,
            (Value::Fn(a), Value::Fn(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => *a.borrow() == *b.borrow(),
            (Value::Record(a), Value::Record(b)) => {
                a.struct_id == b.struct_id && *a.fields.borrow() == *b.fields.borrow()
            }
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Null => write!(f, "null"),
            Value::Fn(FnRef::Unresolved) => write!(f, "<fn:unresolved>"),
            Value::Fn(FnRef::Direct(id)) => write!(f, "<fn:{}>", id.0),
            Value::Fn(FnRef::Slot(id)) => write!(f, "<fn@slot:{}>", id.0),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Record(r) => {
                write!(f, "{{#{}:", r.struct_id.0)?;
                for (i, v) in r.fields.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, " {v}")?;
                }
                write!(f, " }}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_types() {
        assert_eq!(Value::default_for(&Ty::Int), Value::Int(0));
        assert_eq!(Value::default_for(&Ty::Bool), Value::Bool(false));
        assert_eq!(Value::default_for(&Ty::Str), Value::str(""));
        assert_eq!(Value::default_for(&Ty::named("t")), Value::Null);
        assert_eq!(
            Value::default_for(&Ty::func(vec![], Ty::Unit)),
            Value::Fn(FnRef::Unresolved)
        );
        assert_eq!(
            Value::default_for(&Ty::array(Ty::Int)),
            Value::array(vec![])
        );
    }

    #[test]
    fn structural_equality() {
        let a = Value::array(vec![Value::Int(1), Value::str("x")]);
        let b = Value::array(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(a, b);
        let r1 = Value::record(StructId(0), vec![Value::Int(1)]);
        let r2 = Value::record(StructId(0), vec![Value::Int(1)]);
        let r3 = Value::record(StructId(1), vec![Value::Int(1)]);
        assert_eq!(r1, r2);
        assert_ne!(r1, r3, "different layout identity");
    }

    #[test]
    fn deep_size_counts_contents() {
        let v = Value::array(vec![Value::str("abcd"), Value::Int(0)]);
        assert_eq!(v.deep_size(), 16 + (16 + 4) + 8);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(
            Value::array(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "[1, 2]"
        );
    }
}
