//! Run-time traps and link-time errors.

use std::error::Error;
use std::fmt;

/// A run-time fault. Verified code can still trap on the C-like partial
/// operations (null dereference, division by zero, out-of-bounds indexing);
/// it can never violate type safety.
#[derive(Debug, Clone, PartialEq)]
pub enum Trap {
    /// Integer division or remainder by zero.
    DivByZero,
    /// Field access through a `null` record reference.
    NullDeref,
    /// Array or string index out of bounds.
    IndexOutOfBounds {
        /// Requested index.
        index: i64,
        /// Container length.
        len: usize,
    },
    /// Call through an indirection-table slot that has no binding.
    UnboundSlot(String),
    /// Call through an unresolved (default) function value.
    UnresolvedFn,
    /// Guest call stack exceeded the configured limit.
    StackOverflow,
    /// The configured instruction budget was exhausted (see
    /// `Process::set_fuel`) — protection against runaway guest loops.
    OutOfFuel,
    /// A host (extern) function reported an error.
    Host(String),
    /// The entry function named in a `run` call does not exist.
    NoSuchFunction(String),
    /// Arguments passed from the host do not match the entry signature arity.
    BadEntryArity {
        /// Expected parameter count.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::NullDeref => write!(f, "null dereference"),
            Trap::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds (len {len})")
            }
            Trap::UnboundSlot(name) => write!(f, "call through unbound slot `{name}`"),
            Trap::UnresolvedFn => write!(f, "call through unresolved function value"),
            Trap::StackOverflow => write!(f, "guest stack overflow"),
            Trap::OutOfFuel => write!(f, "instruction budget exhausted"),
            Trap::Host(msg) => write!(f, "host function error: {msg}"),
            Trap::NoSuchFunction(name) => write!(f, "no function named `{name}`"),
            Trap::BadEntryArity { expected, got } => {
                write!(f, "entry expects {expected} arguments, got {got}")
            }
        }
    }
}

impl Error for Trap {}

/// A link-time failure while loading or binding a module.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkError {
    /// A symbol could not be resolved against the process.
    Unresolved {
        /// Symbol name.
        name: String,
        /// Symbol kind description (`function`, `global`, `host`).
        kind: &'static str,
    },
    /// A symbol resolved, but to a definition of a different type.
    TypeMismatch {
        /// Symbol name.
        name: String,
        /// Expected (symbol-table) type rendering.
        expected: String,
        /// Found (definition) type rendering.
        found: String,
    },
    /// A type name is already bound to a structurally different definition.
    TypeConflict(String),
    /// A definition (function, global) clashes with an existing one during
    /// initial load.
    Duplicate(String),
    /// Global initialiser trapped while being evaluated.
    InitTrap {
        /// Global name.
        name: String,
        /// The trap.
        trap: Trap,
    },
    /// Module failed bytecode verification.
    Verify(tal::VerifyError),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Unresolved { name, kind } => {
                write!(f, "unresolved {kind} symbol `{name}`")
            }
            LinkError::TypeMismatch {
                name,
                expected,
                found,
            } => {
                write!(f, "symbol `{name}`: expected {expected}, found {found}")
            }
            LinkError::TypeConflict(name) => {
                write!(f, "type `{name}` conflicts with an existing definition")
            }
            LinkError::Duplicate(name) => write!(f, "duplicate definition `{name}`"),
            LinkError::InitTrap { name, trap } => {
                write!(f, "initialiser of `{name}` trapped: {trap}")
            }
            LinkError::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl Error for LinkError {}

impl From<tal::VerifyError> for LinkError {
    fn from(e: tal::VerifyError) -> LinkError {
        LinkError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert_eq!(Trap::DivByZero.to_string(), "division by zero");
        assert!(Trap::IndexOutOfBounds { index: 9, len: 3 }
            .to_string()
            .contains("9"));
        assert!(LinkError::Unresolved {
            name: "f".into(),
            kind: "function"
        }
        .to_string()
        .contains("`f`"));
        assert!(LinkError::Duplicate("g".into())
            .to_string()
            .contains("duplicate"));
    }
}
