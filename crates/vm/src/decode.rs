//! Pre-decoded threaded code.
//!
//! [`lower`] turns a function's linked [`Op`] sequence into the form the
//! interpreter actually executes: a flat [`DOp`] vector with operands
//! pre-extracted, common pairs fused into superinstructions, and every
//! `CallSlot` site carrying its own [`InlineCache`]. The lowering runs
//! once at link time, so the per-instruction fetch in the hot loop is a
//! dense-discriminant match with no re-decoding — structured so a
//! computed-goto/tail-call backend can replace the match later without
//! touching the decode layer.
//!
//! ## Inline caches
//!
//! A `CallSlot` site caches the [`FuncId`] its Global Indirection Table
//! slot resolved to, stamped with the process's **bind generation** at
//! resolution time. While the generation is unchanged the site dispatches
//! with zero indirection-table traffic (one compare, then a direct
//! code-store fetch — no slot load, no name lookup); any rebind — patch
//! apply, rollback, unbind — bumps the generation, so the very next call
//! through every site re-resolves through the slot and refills. A dynamic
//! update therefore stays one atomic slot store plus a generation bump,
//! and suspended frames resume correctly because their sites validate on
//! first use after the patch.
//!
//! The cache holds a plain `(u64, FuncId)` pair in a [`Cell`] rather
//! than a strong `Rc` to the target: the code store is append-only (a
//! collected function is *replaced* by a trapping tombstone, never
//! removed), so a cached id can never dangle, the hit path carries no
//! interior-mutability bookkeeping, and caches cannot form `Rc` cycles
//! through recursive functions or pin collected code.
//! [`Process::collect_code`] still flushes every cache (and bumps the
//! generation) so a tombstoned target is re-resolved rather than trapped.
//!
//! [`Process::collect_code`]: crate::process::Process::collect_code
//!
//! ## Fusion rules
//!
//! Pairs are fused greedily left-to-right, longest pattern first, and
//! never across a jump target (a branch must land on a decoded
//! instruction boundary):
//!
//! * `PushInt k; <cmp>; JumpIfFalse t` → [`DOp::CmpConstBranch`]
//! * `<cmp>; JumpIfFalse t` → [`DOp::CmpBranch`]
//! * `PushInt k; Add|Sub|Mul` → [`DOp::AddConst`] / `SubConst` / `MulConst`
//! * `PushInt k; <cmp>` → [`DOp::CmpConst`]
//! * `LoadLocal n; CallSlot s` → [`DOp::LoadLocalCallSlot`]
//! * `LoadLocal n; CallDirect f` → [`DOp::LoadLocalCallDirect`]
//! * `LoadLocal a; LoadLocal b` → [`DOp::LoadLocal2`]

use std::cell::Cell;
use std::rc::Rc;

use crate::ops::Op;
use crate::value::{FuncId, GlobalId, HostId, SlotId, StructId};

/// An integer comparison, shared by the fused compare forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Cmp {
    /// Evaluates the comparison.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }

    fn from_op(op: &Op) -> Option<Cmp> {
        Some(match op {
            Op::Eq => Cmp::Eq,
            Op::Ne => Cmp::Ne,
            Op::Lt => Cmp::Lt,
            Op::Le => Cmp::Le,
            Op::Gt => Cmp::Gt,
            Op::Ge => Cmp::Ge,
            _ => return None,
        })
    }
}

/// A rebind-safe inline cache attached to one `CallSlot` site.
///
/// Interior-mutable (a [`Cell`] of a `Copy` pair) so the immutable,
/// `Rc`-shared decoded code can refill it mid-execution with no borrow
/// bookkeeping on the hit path. Generation `0` means cold: the process's
/// bind generation starts at 1 and only increments, so `0` never
/// validates.
#[derive(Debug)]
pub struct InlineCache {
    /// The Global Indirection Table slot this site calls through.
    pub slot: SlotId,
    state: Cell<(u64, FuncId)>,
}

impl InlineCache {
    pub(crate) fn new(slot: SlotId) -> InlineCache {
        InlineCache {
            slot,
            state: Cell::new((0, FuncId(0))),
        }
    }

    /// The cached target, when the cache was filled at `generation`.
    #[inline]
    pub(crate) fn lookup(&self, generation: u64) -> Option<FuncId> {
        let (g, id) = self.state.get();
        if g == generation {
            Some(id)
        } else {
            None
        }
    }

    /// Fills the cache with a target resolved at `generation`.
    #[inline]
    pub(crate) fn fill(&self, generation: u64, target: FuncId) {
        self.state.set((generation, target));
    }

    /// Resets the cache to cold.
    pub(crate) fn clear(&self) {
        self.state.set((0, FuncId(0)));
    }

    /// Whether a target is cached (regardless of generation validity).
    pub fn is_warm(&self) -> bool {
        self.state.get().0 != 0
    }
}

/// A decoded, directly executable instruction. See the module docs for
/// the fusion rules; the un-fused variants mirror [`Op`] with operands
/// pre-extracted.
#[derive(Debug)]
pub enum DOp {
    // ------------------------------------------------- superinstructions
    /// `PushInt k; <cmp>; JumpIfFalse t`: pop `a`, branch to `t` when
    /// `!(a cmp k)`.
    CmpConstBranch(Cmp, i64, u32),
    /// `<cmp>; JumpIfFalse t`: pop `b`, `a`, branch when `!(a cmp b)`.
    CmpBranch(Cmp, u32),
    /// `PushInt k; Add`: pop `a`, push `a + k` (wrapping).
    AddConst(i64),
    /// `PushInt k; Sub`: pop `a`, push `a - k` (wrapping).
    SubConst(i64),
    /// `PushInt k; Mul`: pop `a`, push `a * k` (wrapping).
    MulConst(i64),
    /// `PushInt k; <cmp>`: pop `a`, push `a cmp k`.
    CmpConst(Cmp, i64),
    /// `LoadLocal a; LoadLocal b`.
    LoadLocal2(u16, u16),
    /// `LoadLocal n; CallSlot s`: push local `n`, call through the slot's
    /// inline cache.
    LoadLocalCallSlot(u16, Box<InlineCache>),
    /// `LoadLocal n; CallDirect f`.
    LoadLocalCallDirect(u16, FuncId),

    // ------------------------------------------------------------- calls
    /// Call a fixed target (static linking).
    CallDirect(FuncId),
    /// Call through an indirection slot, via the site's inline cache.
    CallSlot(Box<InlineCache>),
    /// Call a popped function value.
    CallIndirect,
    /// Call a host function with known arity.
    CallHost(HostId, u16),
    /// Return.
    Ret,
    /// Update point: suspend here when an update is pending.
    UpdatePoint,

    // ------------------------------------------------------ plain bodies
    /// Push the unit value.
    PushUnit,
    /// Push an integer constant.
    PushInt(i64),
    /// Push a boolean constant.
    PushBool(bool),
    /// Push an interned string constant.
    PushStr(Rc<str>),
    /// Push `null`.
    PushNull,
    /// Push a function value with a fixed target.
    PushFnDirect(FuncId),
    /// Push a function value referring to an indirection slot.
    PushFnSlot(SlotId),
    /// Push local slot `n`.
    LoadLocal(u16),
    /// Pop into local slot `n`.
    StoreLocal(u16),
    /// Push the value of a global cell.
    LoadGlobal(GlobalId),
    /// Pop into a global cell.
    StoreGlobal(GlobalId),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two topmost values.
    Swap,
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Integer division (traps on zero).
    Div,
    /// Integer remainder (traps on zero).
    Rem,
    /// Integer negation.
    Neg,
    /// Integer comparison.
    IntCmp(Cmp),
    /// Boolean and.
    And,
    /// Boolean or.
    Or,
    /// Boolean not.
    Not,
    /// String concatenation.
    Concat,
    /// String length.
    StrLen,
    /// Substring (clamped).
    Substr,
    /// Byte at index (traps out of bounds).
    CharAt,
    /// String equality.
    StrEq,
    /// Substring search.
    StrFind,
    /// Integer to string.
    IntToStr,
    /// String to integer.
    StrToInt,
    /// Unconditional branch.
    Jump(u32),
    /// Pop bool, branch when false.
    JumpIfFalse(u32),
    /// Allocate a record with the given layout and field count.
    NewRecord(StructId, u16),
    /// Read field `i`.
    GetField(u16),
    /// Write field `i`.
    SetField(u16),
    /// Null test.
    IsNull,
    /// Allocate an empty array.
    NewArray,
    /// Indexed array read.
    ArrayGet,
    /// Indexed array write.
    ArraySet,
    /// Array length.
    ArrayLen,
    /// Array append.
    ArrayPush,
    /// No operation.
    Nop,
    /// Garbage-collected code tombstone; traps if executed.
    Unreachable,
}

/// Lowers one non-fusable op. Branch targets are remapped by the caller.
fn lower_one(op: &Op) -> DOp {
    match op {
        Op::PushUnit => DOp::PushUnit,
        Op::PushInt(n) => DOp::PushInt(*n),
        Op::PushBool(b) => DOp::PushBool(*b),
        Op::PushStr(s) => DOp::PushStr(Rc::clone(s)),
        Op::PushNull => DOp::PushNull,
        Op::PushFnDirect(id) => DOp::PushFnDirect(*id),
        Op::PushFnSlot(s) => DOp::PushFnSlot(*s),
        Op::LoadLocal(n) => DOp::LoadLocal(*n),
        Op::StoreLocal(n) => DOp::StoreLocal(*n),
        Op::LoadGlobal(id) => DOp::LoadGlobal(*id),
        Op::StoreGlobal(id) => DOp::StoreGlobal(*id),
        Op::Dup => DOp::Dup,
        Op::Pop => DOp::Pop,
        Op::Swap => DOp::Swap,
        Op::Add => DOp::Add,
        Op::Sub => DOp::Sub,
        Op::Mul => DOp::Mul,
        Op::Div => DOp::Div,
        Op::Rem => DOp::Rem,
        Op::Neg => DOp::Neg,
        Op::Eq => DOp::IntCmp(Cmp::Eq),
        Op::Ne => DOp::IntCmp(Cmp::Ne),
        Op::Lt => DOp::IntCmp(Cmp::Lt),
        Op::Le => DOp::IntCmp(Cmp::Le),
        Op::Gt => DOp::IntCmp(Cmp::Gt),
        Op::Ge => DOp::IntCmp(Cmp::Ge),
        Op::And => DOp::And,
        Op::Or => DOp::Or,
        Op::Not => DOp::Not,
        Op::Concat => DOp::Concat,
        Op::StrLen => DOp::StrLen,
        Op::Substr => DOp::Substr,
        Op::CharAt => DOp::CharAt,
        Op::StrEq => DOp::StrEq,
        Op::StrFind => DOp::StrFind,
        Op::IntToStr => DOp::IntToStr,
        Op::StrToInt => DOp::StrToInt,
        Op::Jump(t) => DOp::Jump(*t),
        Op::JumpIfFalse(t) => DOp::JumpIfFalse(*t),
        Op::CallDirect(id) => DOp::CallDirect(*id),
        Op::CallSlot(s) => DOp::CallSlot(Box::new(InlineCache::new(*s))),
        Op::CallIndirect => DOp::CallIndirect,
        Op::CallHost(id, argc) => DOp::CallHost(*id, *argc),
        Op::Ret => DOp::Ret,
        Op::NewRecord(sid, n) => DOp::NewRecord(*sid, *n),
        Op::GetField(i) => DOp::GetField(*i),
        Op::SetField(i) => DOp::SetField(*i),
        Op::IsNull => DOp::IsNull,
        Op::NewArray => DOp::NewArray,
        Op::ArrayGet => DOp::ArrayGet,
        Op::ArraySet => DOp::ArraySet,
        Op::ArrayLen => DOp::ArrayLen,
        Op::ArrayPush => DOp::ArrayPush,
        Op::UpdatePoint => DOp::UpdatePoint,
        Op::Nop => DOp::Nop,
        Op::Unreachable => DOp::Unreachable,
    }
}

/// Lowers linked code into decoded threaded form (see module docs).
pub fn lower(code: &[Op]) -> Vec<DOp> {
    // A branch must land on a decoded-instruction boundary: an op that is
    // a jump target can never be absorbed into its predecessor's fusion.
    let mut is_target = vec![false; code.len() + 1];
    for op in code {
        if let Op::Jump(t) | Op::JumpIfFalse(t) = op {
            is_target[*t as usize] = true;
        }
    }

    // Pass 1: fuse, recording old-index → new-index for every old op (a
    // target always maps to the start of the group that covers it, since
    // targets are never absorbed).
    let mut map = vec![0usize; code.len() + 1];
    let mut out: Vec<DOp> = Vec::with_capacity(code.len());
    let mut i = 0;
    while i < code.len() {
        let free2 = i + 1 < code.len() && !is_target[i + 1];
        let free3 = free2 && i + 2 < code.len() && !is_target[i + 2];
        let (dop, len) = match &code[i] {
            Op::PushInt(k) if free2 => match (&code[i + 1], code.get(i + 2)) {
                (Op::Add, _) => (DOp::AddConst(*k), 2),
                (Op::Sub, _) => (DOp::SubConst(*k), 2),
                (Op::Mul, _) => (DOp::MulConst(*k), 2),
                (cmp, Some(Op::JumpIfFalse(t))) if free3 && Cmp::from_op(cmp).is_some() => {
                    (DOp::CmpConstBranch(Cmp::from_op(cmp).unwrap(), *k, *t), 3)
                }
                (cmp, _) if Cmp::from_op(cmp).is_some() => {
                    (DOp::CmpConst(Cmp::from_op(cmp).unwrap(), *k), 2)
                }
                _ => (DOp::PushInt(*k), 1),
            },
            cmp if free2
                && Cmp::from_op(cmp).is_some()
                && matches!(code[i + 1], Op::JumpIfFalse(_)) =>
            {
                let Op::JumpIfFalse(t) = code[i + 1] else {
                    unreachable!()
                };
                (DOp::CmpBranch(Cmp::from_op(cmp).unwrap(), t), 2)
            }
            Op::LoadLocal(n) if free2 => match &code[i + 1] {
                Op::LoadLocal(m) => (DOp::LoadLocal2(*n, *m), 2),
                Op::CallSlot(s) => (
                    DOp::LoadLocalCallSlot(*n, Box::new(InlineCache::new(*s))),
                    2,
                ),
                Op::CallDirect(f) => (DOp::LoadLocalCallDirect(*n, *f), 2),
                _ => (DOp::LoadLocal(*n), 1),
            },
            other => (lower_one(other), 1),
        };
        for m in &mut map[i..i + len] {
            *m = out.len();
        }
        out.push(dop);
        i += len;
    }
    map[code.len()] = out.len();

    // Pass 2: remap branch targets into decoded indices.
    for d in &mut out {
        match d {
            DOp::Jump(t)
            | DOp::JumpIfFalse(t)
            | DOp::CmpBranch(_, t)
            | DOp::CmpConstBranch(_, _, t) => *t = map[*t as usize] as u32,
            _ => {}
        }
    }
    out
}

/// Clears every inline cache in `decoded` (code GC support: a cached id
/// whose target was tombstoned must re-resolve, not trap).
pub fn flush_caches(decoded: &[DOp]) {
    for d in decoded {
        match d {
            DOp::CallSlot(ic) | DOp::LoadLocalCallSlot(_, ic) => ic.clear(),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuses_const_binops_and_compare_branches() {
        // LoadLocal 0; PushInt 2; Lt; JumpIfFalse 6; LoadLocal 0;
        // PushInt 1; Sub; Ret; <target 6:> PushUnit; Ret
        let code = vec![
            Op::LoadLocal(0),
            Op::PushInt(2),
            Op::Lt,
            Op::JumpIfFalse(8),
            Op::LoadLocal(0),
            Op::PushInt(1),
            Op::Sub,
            Op::Ret,
            Op::PushUnit,
            Op::Ret,
        ];
        let d = lower(&code);
        assert!(
            matches!(
                d.as_slice(),
                [
                    DOp::LoadLocal(0),
                    DOp::CmpConstBranch(Cmp::Lt, 2, 5),
                    DOp::LoadLocal(0),
                    DOp::SubConst(1),
                    DOp::Ret,
                    DOp::PushUnit,
                    DOp::Ret,
                ]
            ),
            "{d:?}"
        );
    }

    #[test]
    fn never_fuses_across_a_jump_target() {
        // The back edge targets the PushInt at index 1: it must stay a
        // decoded-instruction boundary even though `PushInt; Add` would
        // otherwise fuse with the op before it... and the pair itself IS
        // fusable (PushInt is the group leader, Add is not a target).
        let code = vec![
            Op::LoadLocal(0), // 0
            Op::PushInt(1),   // 1  <- jump target
            Op::Add,          // 2
            Op::Jump(1),      // 3
        ];
        let d = lower(&code);
        // LoadLocal(0) may not absorb PushInt(1); the target lands on the
        // AddConst group whose leader is old index 1.
        assert!(
            matches!(
                d.as_slice(),
                [DOp::LoadLocal(0), DOp::AddConst(1), DOp::Jump(1)]
            ),
            "{d:?}"
        );
    }

    #[test]
    fn fused_compare_is_blocked_when_branch_is_a_target() {
        // JumpIfFalse at index 2 is itself a jump target: Lt may not
        // absorb it.
        let code = vec![
            Op::LoadLocal(0),   // 0
            Op::LoadLocal(1),   // 1
            Op::Lt,             // 2 (fuses with 0? no — 0/1 fuse as pair)
            Op::JumpIfFalse(0), // 3 <- target of the jump below
            Op::Jump(3),        // 4
        ];
        let d = lower(&code);
        assert!(
            matches!(
                d.as_slice(),
                [
                    DOp::LoadLocal2(0, 1),
                    DOp::IntCmp(Cmp::Lt),
                    DOp::JumpIfFalse(0),
                    DOp::Jump(2),
                ]
            ),
            "{d:?}"
        );
    }

    #[test]
    fn call_sites_get_inline_caches() {
        let code = vec![
            Op::LoadLocal(0),
            Op::CallSlot(SlotId(3)),
            Op::CallSlot(SlotId(4)),
            Op::Ret,
        ];
        let d = lower(&code);
        match d.as_slice() {
            [DOp::LoadLocalCallSlot(0, ic1), DOp::CallSlot(ic2), DOp::Ret] => {
                assert_eq!(ic1.slot, SlotId(3));
                assert_eq!(ic2.slot, SlotId(4));
                assert!(!ic1.is_warm() && !ic2.is_warm());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn branch_target_one_past_the_end_is_remapped() {
        let code = vec![Op::PushBool(true), Op::JumpIfFalse(3), Op::Ret];
        let d = lower(&code);
        assert!(
            matches!(
                d.as_slice(),
                [DOp::PushBool(true), DOp::JumpIfFalse(3), DOp::Ret]
            ),
            "{d:?}"
        );
    }
}
