//! Link-resolved instructions.
//!
//! [`Op`] is the executed form of [`tal::Instr`]: all symbolic references
//! have been bound by the linker. The two call/push-function variants make
//! the cost model of the paper's experiment explicit:
//!
//! * `CallDirect`/`PushFnDirect` — static linking; the target is fixed.
//! * `CallSlot`/`PushFnSlot` — updateable linking; each call reads the
//!   current occupant of a Global Indirection Table slot, paying one extra
//!   indirection, and is retargetable by a dynamic patch.

use std::rc::Rc;

use crate::value::{FuncId, GlobalId, HostId, SlotId, StructId};

/// A resolved, directly executable instruction.
#[derive(Debug, Clone)]
pub enum Op {
    /// Push the unit value.
    PushUnit,
    /// Push an integer constant.
    PushInt(i64),
    /// Push a boolean constant.
    PushBool(bool),
    /// Push an interned string constant.
    PushStr(Rc<str>),
    /// Push `null`.
    PushNull,
    /// Push a function value with a fixed target.
    PushFnDirect(FuncId),
    /// Push a function value referring to an indirection slot.
    PushFnSlot(SlotId),
    /// Push local slot `n`.
    LoadLocal(u16),
    /// Pop into local slot `n`.
    StoreLocal(u16),
    /// Push the value of a global cell.
    LoadGlobal(GlobalId),
    /// Pop into a global cell.
    StoreGlobal(GlobalId),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two topmost values.
    Swap,
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Integer division (traps on zero).
    Div,
    /// Integer remainder (traps on zero).
    Rem,
    /// Integer negation.
    Neg,
    /// Integer equality.
    Eq,
    /// Integer inequality.
    Ne,
    /// Integer less-than.
    Lt,
    /// Integer less-or-equal.
    Le,
    /// Integer greater-than.
    Gt,
    /// Integer greater-or-equal.
    Ge,
    /// Boolean and.
    And,
    /// Boolean or.
    Or,
    /// Boolean not.
    Not,
    /// String concatenation.
    Concat,
    /// String length.
    StrLen,
    /// Substring (clamped).
    Substr,
    /// Byte at index (traps out of bounds).
    CharAt,
    /// String equality.
    StrEq,
    /// Substring search.
    StrFind,
    /// Integer to string.
    IntToStr,
    /// String to integer (`0` on malformed input).
    StrToInt,
    /// Unconditional branch.
    Jump(u32),
    /// Pop bool, branch when false.
    JumpIfFalse(u32),
    /// Call a fixed target (static linking).
    CallDirect(FuncId),
    /// Call through an indirection slot (updateable linking).
    CallSlot(SlotId),
    /// Call a popped function value.
    CallIndirect,
    /// Call a host function with known arity.
    CallHost(HostId, u16),
    /// Return.
    Ret,
    /// Allocate a record with the given layout and field count.
    NewRecord(StructId, u16),
    /// Read field `i`.
    GetField(u16),
    /// Write field `i`.
    SetField(u16),
    /// Null test.
    IsNull,
    /// Allocate an empty array.
    NewArray,
    /// Indexed array read.
    ArrayGet,
    /// Indexed array write.
    ArraySet,
    /// Array length.
    ArrayLen,
    /// Array append.
    ArrayPush,
    /// Update point: suspend here when an update is pending.
    UpdatePoint,
    /// No operation.
    Nop,
    /// Body of a garbage-collected code tombstone; traps if ever executed
    /// (the collector's reachability analysis guarantees it is not).
    Unreachable,
}
