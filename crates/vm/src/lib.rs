//! # vm — interpreter for `tal` bytecode with static and updateable linking
//!
//! This crate executes verified [`tal`] modules inside a [`Process`]. Its
//! defining feature, following "Dynamic Software Updating" (PLDI 2001), is
//! the **link mode**:
//!
//! * [`LinkMode::Static`] binds every call directly to code — the
//!   conventional-executable baseline of the paper's overhead experiment;
//! * [`LinkMode::Updateable`] routes every call (and function pointer)
//!   through a Global Indirection Table slot, paying a small per-call cost
//!   in exchange for the ability to *rebind* any function at run time.
//!
//! Executions can suspend at guest `update` points and resume after the
//! embedding update runtime (the `dsu-core` crate) has relinked the
//! process; frames already on the stack keep executing their old code.
//!
//! ## Example
//!
//! ```
//! use tal::{ModuleBuilder, FnSig, Ty, Instr};
//! use vm::{Process, LinkMode, Value};
//!
//! let mut b = ModuleBuilder::new("demo", "v1");
//! b.function("add", FnSig::new(vec![Ty::Int, Ty::Int], Ty::Int), |f| {
//!     f.emit(Instr::LoadLocal(0));
//!     f.emit(Instr::LoadLocal(1));
//!     f.emit(Instr::Add);
//!     f.emit(Instr::Ret);
//! });
//! let mut p = Process::new(LinkMode::Updateable);
//! p.load_module(&b.finish())?;
//! assert_eq!(p.call("add", vec![Value::Int(2), Value::Int(3)])?, Value::Int(5));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod decode;
pub mod interp;
pub mod ops;
pub mod process;
pub mod profile;
pub mod snapshot_io;
pub mod trap;
pub mod value;

pub use decode::{Cmp, DOp, InlineCache};
pub use interp::{ExecState, ExecStats, ExecStatsShared, Frame, Outcome};
pub use ops::Op;
pub use process::{
    BindingSnapshot, GlobalCell, HostFn, LinkMode, LinkOverrides, LinkedFunction, PlannedBindings,
    Process, ProcessTypes, UpdateSignal,
};
pub use profile::{Profiler, SiteStats};
pub use snapshot_io::{decode_snapshot, encode_snapshot, SnapshotCodecError};
pub use trap::{LinkError, Trap};
pub use value::{FnRef, FuncId, GlobalId, HostId, RecordObj, SlotId, StructId, Value};

#[cfg(test)]
mod tests {
    use super::*;
    use tal::{FnSig, Instr, ModuleBuilder, Ty, TypeDef};

    fn arith_module() -> tal::Module {
        let mut b = ModuleBuilder::new("m", "v1");
        b.function("add", FnSig::new(vec![Ty::Int, Ty::Int], Ty::Int), |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::LoadLocal(1));
            f.emit(Instr::Add);
            f.emit(Instr::Ret);
        });
        let add = b.declare_fn("add", FnSig::new(vec![Ty::Int, Ty::Int], Ty::Int));
        b.function("triple_add", FnSig::new(vec![Ty::Int], Ty::Int), move |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::Call(add));
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::Call(add));
            f.emit(Instr::Ret);
        });
        b.finish()
    }

    #[test]
    fn runs_in_both_link_modes() {
        for mode in [LinkMode::Static, LinkMode::Updateable] {
            let mut p = Process::new(mode);
            p.load_module(&arith_module()).unwrap();
            let v = p.call("triple_add", vec![Value::Int(7)]).unwrap();
            assert_eq!(v, Value::Int(21), "{mode:?}");
        }
    }

    #[test]
    fn profiler_collects_stacks_and_ic_sites() {
        let mut p = Process::new(LinkMode::Updateable);
        p.set_profiling(true);
        p.load_module(&arith_module()).unwrap();
        p.call("triple_add", vec![Value::Int(7)]).unwrap();
        p.call("triple_add", vec![Value::Int(9)]).unwrap();

        let profile = p.profile().expect("armed");
        let collapsed = p.profile_collapsed().unwrap();
        assert!(
            collapsed.contains("triple_add;add "),
            "callee stacks nest under the caller: {collapsed}"
        );
        let dispatches = profile.dispatch_counts();
        let add = dispatches.iter().find(|d| d.0 == "add").expect("add seen");
        assert_eq!(add.1, 4, "two calls x two add dispatches each");

        // Both slot-call sites in triple_add show up, and after the first
        // (cold) resolution every call is an inline-cache hit.
        let sites = profile.site_stats();
        assert_eq!(sites.len(), 2, "{sites:?}");
        let (hits, misses): (u64, u64) = sites
            .iter()
            .fold((0, 0), |(h, m), (_, s)| (h + s.hits, m + s.misses));
        assert_eq!(misses, 2, "one cold miss per site");
        assert_eq!(hits, 2, "warm calls answer from the cache");
        assert!(p.profile_report().unwrap().contains("triple_add"));

        // Frame-pool counters: first call-chain allocates, later ones reuse.
        assert!(p.stats.pool_misses >= 1);
        assert!(p.stats.pool_hits >= 1, "{:?}", p.stats);

        p.set_profiling(false);
        assert!(p.profile_collapsed().is_none());
    }

    #[test]
    fn updateable_mode_counts_slot_calls() {
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&arith_module()).unwrap();
        p.call("triple_add", vec![Value::Int(1)]).unwrap();
        assert_eq!(p.stats.slot_calls, 2);

        let mut p = Process::new(LinkMode::Static);
        p.load_module(&arith_module()).unwrap();
        p.call("triple_add", vec![Value::Int(1)]).unwrap();
        assert_eq!(p.stats.slot_calls, 0);
    }

    #[test]
    fn division_by_zero_traps() {
        let mut b = ModuleBuilder::new("m", "v1");
        b.function("div", FnSig::new(vec![Ty::Int, Ty::Int], Ty::Int), |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::LoadLocal(1));
            f.emit(Instr::Div);
            f.emit(Instr::Ret);
        });
        let mut p = Process::new(LinkMode::Static);
        p.load_module(&b.finish()).unwrap();
        assert_eq!(
            p.call("div", vec![Value::Int(6), Value::Int(2)]).unwrap(),
            Value::Int(3)
        );
        let e = p
            .call("div", vec![Value::Int(6), Value::Int(0)])
            .unwrap_err();
        assert_eq!(e, Trap::DivByZero);
    }

    #[test]
    fn null_dereference_traps() {
        let mut b = ModuleBuilder::new("m", "v1");
        b.def_type(TypeDef::new("box", vec![tal::Field::new("v", Ty::Int)]));
        let tr = b.type_ref("box");
        b.function("deref_null", FnSig::new(vec![], Ty::Int), move |f| {
            f.emit(Instr::PushNull(tr));
            f.emit(Instr::GetField(tr, 0));
            f.emit(Instr::Ret);
        });
        let mut p = Process::new(LinkMode::Static);
        p.load_module(&b.finish()).unwrap();
        assert_eq!(p.call("deref_null", vec![]).unwrap_err(), Trap::NullDeref);
    }

    #[test]
    fn records_and_arrays_round_trip() {
        let mut b = ModuleBuilder::new("m", "v1");
        b.def_type(TypeDef::new(
            "pair",
            vec![tal::Field::new("a", Ty::Int), tal::Field::new("b", Ty::Int)],
        ));
        let tr = b.type_ref("pair");
        b.function("sum_pairs", FnSig::new(vec![Ty::Int], Ty::Int), move |f| {
            // Build an array of `n` pairs {i, i*2}, then sum all fields.
            let arr = f.local(Ty::array(Ty::named("pair")));
            let i = f.local(Ty::Int);
            let acc = f.local(Ty::Int);
            f.emit(Instr::NewArray(Ty::named("pair")));
            f.emit(Instr::StoreLocal(arr));
            // fill loop
            let top = f.new_label();
            let done = f.new_label();
            f.bind(top);
            f.emit(Instr::LoadLocal(i));
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::Lt);
            f.jump_if_false(done);
            f.emit(Instr::LoadLocal(arr));
            f.emit(Instr::LoadLocal(i));
            f.emit(Instr::LoadLocal(i));
            f.emit(Instr::PushInt(2));
            f.emit(Instr::Mul);
            f.emit(Instr::NewRecord(tr));
            f.emit(Instr::ArrayPush);
            f.emit(Instr::LoadLocal(i));
            f.emit(Instr::PushInt(1));
            f.emit(Instr::Add);
            f.emit(Instr::StoreLocal(i));
            f.jump(top);
            f.bind(done);
            // sum loop
            f.emit(Instr::PushInt(0));
            f.emit(Instr::StoreLocal(i));
            let top2 = f.new_label();
            let done2 = f.new_label();
            f.bind(top2);
            f.emit(Instr::LoadLocal(i));
            f.emit(Instr::LoadLocal(arr));
            f.emit(Instr::ArrayLen);
            f.emit(Instr::Lt);
            f.jump_if_false(done2);
            f.emit(Instr::LoadLocal(acc));
            f.emit(Instr::LoadLocal(arr));
            f.emit(Instr::LoadLocal(i));
            f.emit(Instr::ArrayGet);
            f.emit(Instr::GetField(tr, 0));
            f.emit(Instr::Add);
            f.emit(Instr::LoadLocal(arr));
            f.emit(Instr::LoadLocal(i));
            f.emit(Instr::ArrayGet);
            f.emit(Instr::GetField(tr, 1));
            f.emit(Instr::Add);
            f.emit(Instr::StoreLocal(acc));
            f.emit(Instr::LoadLocal(i));
            f.emit(Instr::PushInt(1));
            f.emit(Instr::Add);
            f.emit(Instr::StoreLocal(i));
            f.jump(top2);
            f.bind(done2);
            f.emit(Instr::LoadLocal(acc));
            f.emit(Instr::Ret);
        });
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&b.finish()).unwrap();
        // sum over i of (i + 2i) for i in 0..4 = 3 * (0+1+2+3) = 18
        assert_eq!(
            p.call("sum_pairs", vec![Value::Int(4)]).unwrap(),
            Value::Int(18)
        );
    }

    #[test]
    fn globals_initialise_and_persist() {
        let mut b = ModuleBuilder::new("m", "v1");
        b.global("counter", Ty::Int, vec![Instr::PushInt(10), Instr::Ret]);
        let g = b.declare_global("counter", Ty::Int);
        b.function("bump", FnSig::new(vec![], Ty::Int), move |f| {
            f.emit(Instr::LoadGlobal(g));
            f.emit(Instr::PushInt(1));
            f.emit(Instr::Add);
            f.emit(Instr::StoreGlobal(g));
            f.emit(Instr::LoadGlobal(g));
            f.emit(Instr::Ret);
        });
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&b.finish()).unwrap();
        assert_eq!(p.global_value("counter"), Some(Value::Int(10)));
        assert_eq!(p.call("bump", vec![]).unwrap(), Value::Int(11));
        assert_eq!(p.call("bump", vec![]).unwrap(), Value::Int(12));
        assert_eq!(p.global_value("counter"), Some(Value::Int(12)));
    }

    #[test]
    fn host_functions_are_callable() {
        let mut b = ModuleBuilder::new("m", "v1");
        let h = b.declare_host("double_it", FnSig::new(vec![Ty::Int], Ty::Int));
        b.function("go", FnSig::new(vec![Ty::Int], Ty::Int), move |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::CallHost(h));
            f.emit(Instr::Ret);
        });
        let mut p = Process::new(LinkMode::Static);
        p.register_host(
            "double_it",
            FnSig::new(vec![Ty::Int], Ty::Int),
            Box::new(|args| Ok(Value::Int(args[0].as_int() * 2))),
        );
        p.load_module(&b.finish()).unwrap();
        assert_eq!(p.call("go", vec![Value::Int(21)]).unwrap(), Value::Int(42));
        assert_eq!(p.stats.host_calls, 1);
    }

    #[test]
    fn missing_host_is_a_link_error() {
        let mut b = ModuleBuilder::new("m", "v1");
        let h = b.declare_host("ghost", FnSig::new(vec![], Ty::Unit));
        b.function("go", FnSig::new(vec![], Ty::Unit), move |f| {
            f.emit(Instr::CallHost(h));
            f.emit(Instr::Ret);
        });
        let mut p = Process::new(LinkMode::Static);
        let e = p.load_module(&b.finish()).unwrap_err();
        assert!(
            matches!(e, LinkError::Unresolved { kind: "host", .. }),
            "{e}"
        );
    }

    #[test]
    fn rebinding_a_function_redirects_future_calls() {
        // The essence of dynamic updating, at the VM level.
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&arith_module()).unwrap();
        assert_eq!(
            p.call("triple_add", vec![Value::Int(5)]).unwrap(),
            Value::Int(15)
        );

        // Build a replacement for `add` that subtracts instead.
        let mut b = ModuleBuilder::new("patch", "v2");
        b.function("add", FnSig::new(vec![Ty::Int, Ty::Int], Ty::Int), |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::LoadLocal(1));
            f.emit(Instr::Sub);
            f.emit(Instr::Ret);
        });
        let patch = b.finish();
        tal::verify_module(&patch, &ProcessTypes(&p)).unwrap();
        let planned = p.link_functions(&patch, &LinkOverrides::default()).unwrap();
        for (name, id) in planned {
            p.bind_function(&name, id);
        }
        // (5 - 5) - 5 = -5: `triple_add` now reaches the new `add` through
        // its indirection slot without itself being relinked.
        assert_eq!(
            p.call("triple_add", vec![Value::Int(5)]).unwrap(),
            Value::Int(-5)
        );
    }

    #[test]
    fn static_mode_is_not_affected_by_rebinding() {
        let mut p = Process::new(LinkMode::Static);
        p.load_module(&arith_module()).unwrap();
        let mut b = ModuleBuilder::new("patch", "v2");
        b.function("add", FnSig::new(vec![Ty::Int, Ty::Int], Ty::Int), |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::LoadLocal(1));
            f.emit(Instr::Sub);
            f.emit(Instr::Ret);
        });
        let patch = b.finish();
        let planned = p.link_functions(&patch, &LinkOverrides::default()).unwrap();
        for (name, id) in planned {
            p.bind_function(&name, id);
        }
        // Direct binding: old callers keep their resolved target.
        assert_eq!(
            p.call("triple_add", vec![Value::Int(5)]).unwrap(),
            Value::Int(15)
        );
    }

    #[test]
    fn update_point_suspends_and_resumes() {
        let mut b = ModuleBuilder::new("m", "v1");
        b.global("state", Ty::Int, vec![Instr::PushInt(0), Instr::Ret]);
        let g = b.declare_global("state", Ty::Int);
        b.function("work", FnSig::new(vec![], Ty::Int), move |f| {
            f.emit(Instr::PushInt(1));
            f.emit(Instr::StoreGlobal(g));
            f.emit(Instr::UpdatePoint);
            f.emit(Instr::LoadGlobal(g));
            f.emit(Instr::PushInt(100));
            f.emit(Instr::Add);
            f.emit(Instr::Ret);
        });
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&b.finish()).unwrap();

        // Without a pending request the update point is a no-op.
        assert_eq!(
            p.run("work", vec![]).unwrap(),
            Outcome::Done(Value::Int(101))
        );

        // With a pending request the run suspends; we mutate state (as a
        // state transformer would) and resume.
        p.request_update(true);
        assert_eq!(p.run("work", vec![]).unwrap(), Outcome::Suspended);
        assert!(p.is_suspended());
        assert_eq!(p.suspended_stack(), vec!["work".to_string()]);
        p.set_global("state", Value::Int(50));
        p.request_update(false);
        assert_eq!(p.resume().unwrap(), Outcome::Done(Value::Int(150)));
        assert!(!p.is_suspended());
    }

    #[test]
    fn snapshot_restore_rolls_back_bindings() {
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&arith_module()).unwrap();
        let snap = p.snapshot();

        let mut b = ModuleBuilder::new("patch", "v2");
        b.function("add", FnSig::new(vec![Ty::Int, Ty::Int], Ty::Int), |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::LoadLocal(1));
            f.emit(Instr::Sub);
            f.emit(Instr::Ret);
        });
        let planned = p
            .link_functions(&b.finish(), &LinkOverrides::default())
            .unwrap();
        for (name, id) in planned {
            p.bind_function(&name, id);
        }
        assert_eq!(
            p.call("triple_add", vec![Value::Int(5)]).unwrap(),
            Value::Int(-5)
        );

        p.restore(snap);
        assert_eq!(
            p.call("triple_add", vec![Value::Int(5)]).unwrap(),
            Value::Int(15)
        );
    }

    #[test]
    fn function_values_follow_slot_rebinding() {
        let mut b = ModuleBuilder::new("m", "v1");
        b.function("f", FnSig::new(vec![], Ty::Int), |f| {
            f.emit(Instr::PushInt(1));
            f.emit(Instr::Ret);
        });
        let fsym = b.declare_fn("f", FnSig::new(vec![], Ty::Int));
        b.function(
            "call_through_value",
            FnSig::new(vec![], Ty::Int),
            move |fb| {
                fb.emit(Instr::PushFn(fsym));
                fb.emit(Instr::CallIndirect);
                fb.emit(Instr::Ret);
            },
        );
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&b.finish()).unwrap();
        assert_eq!(p.call("call_through_value", vec![]).unwrap(), Value::Int(1));

        let mut b = ModuleBuilder::new("patch", "v2");
        b.function("f", FnSig::new(vec![], Ty::Int), |f| {
            f.emit(Instr::PushInt(2));
            f.emit(Instr::Ret);
        });
        let planned = p
            .link_functions(&b.finish(), &LinkOverrides::default())
            .unwrap();
        for (name, id) in planned {
            p.bind_function(&name, id);
        }
        assert_eq!(p.call("call_through_value", vec![]).unwrap(), Value::Int(2));
    }

    #[test]
    fn unbinding_makes_future_calls_trap() {
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&arith_module()).unwrap();
        p.unbind_function("add");
        let e = p.call("triple_add", vec![Value::Int(1)]).unwrap_err();
        assert_eq!(e, Trap::UnboundSlot("add".to_string()));
    }

    #[test]
    fn deep_recursion_overflows_gracefully() {
        let mut b = ModuleBuilder::new("m", "v1");
        let rec = b.declare_fn("spin", FnSig::new(vec![Ty::Int], Ty::Int));
        b.function("spin", FnSig::new(vec![Ty::Int], Ty::Int), move |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::PushInt(1));
            f.emit(Instr::Add);
            f.emit(Instr::Call(rec));
            f.emit(Instr::Ret);
        });
        let mut p = Process::new(LinkMode::Static);
        p.max_stack_depth = 64;
        p.load_module(&b.finish()).unwrap();
        assert_eq!(
            p.call("spin", vec![Value::Int(0)]).unwrap_err(),
            Trap::StackOverflow
        );
    }

    #[test]
    fn string_operations() {
        let mut b = ModuleBuilder::new("m", "v1");
        let hello = b.string("hello ");
        b.function("greet", FnSig::new(vec![Ty::Str], Ty::Str), move |f| {
            f.emit(Instr::PushStr(hello));
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::Concat);
            f.emit(Instr::Ret);
        });
        b.function("head3", FnSig::new(vec![Ty::Str], Ty::Str), |f| {
            f.emit(Instr::LoadLocal(0));
            f.emit(Instr::PushInt(0));
            f.emit(Instr::PushInt(3));
            f.emit(Instr::Substr);
            f.emit(Instr::Ret);
        });
        let mut p = Process::new(LinkMode::Static);
        p.load_module(&b.finish()).unwrap();
        assert_eq!(
            p.call("greet", vec![Value::str("world")]).unwrap(),
            Value::str("hello world")
        );
        assert_eq!(
            p.call("head3", vec![Value::str("abcdef")]).unwrap(),
            Value::str("abc")
        );
        assert_eq!(
            p.call("head3", vec![Value::str("ab")]).unwrap(),
            Value::str("ab")
        );
    }
}
