//! The interpreter.
//!
//! Execution uses an explicit frame stack so a run can be *suspended* at an
//! update point and resumed after a dynamic patch has been applied. Frames
//! hold an `Rc` to their code: a frame that was executing a function when
//! it got replaced finishes under the old code — the paper's semantics for
//! updating active code.
//!
//! The loop dispatches over each function's **pre-decoded** form (see
//! [`crate::decode`]): operands are pre-extracted, hot pairs are fused
//! into superinstructions, and updateable calls go through per-site
//! inline caches validated against the process's bind generation — so a
//! warm call pays no indirection-table traffic at all, while any rebind
//! is observed by the very next call through every site.

use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::decode::{DOp, InlineCache};
use crate::process::{LinkedFunction, Process};
use crate::trap::Trap;
use crate::value::{FnRef, Value};

/// Cumulative execution counters, used by the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Decoded instructions executed (a fused superinstruction counts 1).
    pub instrs: u64,
    /// Guest-to-guest calls.
    pub calls: u64,
    /// Calls that went through an indirection-table slot.
    pub slot_calls: u64,
    /// Slot calls answered by a warm inline cache (no table traffic).
    pub ic_hits: u64,
    /// Slot calls that (re-)resolved through the indirection table.
    pub ic_misses: u64,
    /// Host calls.
    pub host_calls: u64,
    /// Update points executed (whether or not they suspended).
    pub update_points: u64,
    /// Guest calls whose frame buffers came from the recycling pool.
    pub pool_hits: u64,
    /// Guest calls that had to allocate fresh frame buffers.
    pub pool_misses: u64,
}

/// A cross-thread mirror of one process's [`ExecStats`].
///
/// The interpreter's own counters stay plain `u64` fields on the
/// (thread-local) [`Process`] — the hot path pays nothing for
/// observability. An embedder that wants live telemetry *publishes* the
/// counters into one of these at its natural quiescent boundaries
/// (serve-loop iterations, update points): relaxed atomic stores, so a
/// scraper on another thread reads a recent — not torn — snapshot.
#[derive(Debug, Default)]
pub struct ExecStatsShared {
    instrs: AtomicU64,
    calls: AtomicU64,
    slot_calls: AtomicU64,
    ic_hits: AtomicU64,
    ic_misses: AtomicU64,
    host_calls: AtomicU64,
    update_points: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
}

impl ExecStatsShared {
    /// Creates a zeroed mirror.
    pub fn new() -> ExecStatsShared {
        ExecStatsShared::default()
    }

    /// Publishes `stats` (relaxed stores; cheap enough for every
    /// serve-loop iteration).
    pub fn publish(&self, stats: &ExecStats) {
        self.instrs.store(stats.instrs, Ordering::Relaxed);
        self.calls.store(stats.calls, Ordering::Relaxed);
        self.slot_calls.store(stats.slot_calls, Ordering::Relaxed);
        self.ic_hits.store(stats.ic_hits, Ordering::Relaxed);
        self.ic_misses.store(stats.ic_misses, Ordering::Relaxed);
        self.host_calls.store(stats.host_calls, Ordering::Relaxed);
        self.update_points
            .store(stats.update_points, Ordering::Relaxed);
        self.pool_hits.store(stats.pool_hits, Ordering::Relaxed);
        self.pool_misses.store(stats.pool_misses, Ordering::Relaxed);
    }

    /// The most recently published counters (relaxed loads).
    pub fn snapshot(&self) -> ExecStats {
        ExecStats {
            instrs: self.instrs.load(Ordering::Relaxed),
            calls: self.calls.load(Ordering::Relaxed),
            slot_calls: self.slot_calls.load(Ordering::Relaxed),
            ic_hits: self.ic_hits.load(Ordering::Relaxed),
            ic_misses: self.ic_misses.load(Ordering::Relaxed),
            host_calls: self.host_calls.load(Ordering::Relaxed),
            update_points: self.update_points.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
        }
    }
}

/// One activation record.
#[derive(Debug)]
pub struct Frame {
    /// The code this frame executes (pinned: survives rebinding).
    pub func: Rc<LinkedFunction>,
    /// Next instruction index (into the function's *decoded* code).
    pub pc: usize,
    /// Local slots (parameters first).
    pub locals: Vec<Value>,
    /// Operand stack.
    pub stack: Vec<Value>,
}

impl Frame {
    /// Builds a frame for `func` with `args` already bound to the leading
    /// locals; remaining locals take their type's default value.
    pub fn new(func: Rc<LinkedFunction>, args: Vec<Value>) -> Frame {
        let mut locals = args;
        for ty in &func.locals[locals.len()..] {
            locals.push(Value::default_for(ty));
        }
        Frame {
            func,
            pc: 0,
            locals,
            stack: Vec::new(),
        }
    }
}

/// A (possibly suspended) execution: the guest call stack.
///
/// Finished frames donate their `locals`/`stack` buffers to a small pool
/// so the hot call path does not allocate — keeping per-call cost low
/// enough that the *dispatch* difference between static and updateable
/// linking (the paper's overhead experiment) is what dominates. Host
/// calls marshal their arguments through a reusable scratch buffer for
/// the same reason.
#[derive(Debug)]
pub struct ExecState {
    frames: Vec<Frame>,
    pool: Vec<(Vec<Value>, Vec<Value>)>,
    host_args: Vec<Value>,
}

impl ExecState {
    /// Starts an execution with a single entry frame.
    pub fn with_frame(frame: Frame) -> ExecState {
        ExecState {
            frames: vec![frame],
            pool: Vec::new(),
            host_args: Vec::new(),
        }
    }

    /// Names of the functions on the stack, outermost first.
    pub fn frame_functions(&self) -> Vec<String> {
        self.frames.iter().map(|f| f.func.name.clone()).collect()
    }

    /// The code of every frame on the stack, outermost first.
    pub fn frame_codes(&self) -> Vec<Rc<LinkedFunction>> {
        self.frames.iter().map(|f| Rc::clone(&f.func)).collect()
    }

    /// Every value held in any frame's locals or operand stack (the code
    /// garbage collector scans these for live function values).
    pub fn frame_values(&self) -> impl Iterator<Item = &Value> {
        self.frames
            .iter()
            .flat_map(|f| f.locals.iter().chain(f.stack.iter()))
    }
}

/// Why `exec` returned.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The entry frame returned this value.
    Done(Value),
    /// The guest reached an update point while an update was pending; the
    /// execution state is retained for [`Process::resume`].
    Suspended,
}

/// Resolves a slot-call site through its inline cache.
///
/// A warm cache whose generation matches the process's current bind
/// generation answers with no indirection-table traffic — one compare,
/// then a direct code-store fetch. Otherwise the slot is consulted and
/// the cache refilled at the current generation (so the next rebind —
/// which bumps the generation — invalidates it again).
#[inline]
fn resolve_slot_call(
    proc: &mut Process,
    ic: &InlineCache,
    generation: u64,
) -> Result<Rc<LinkedFunction>, Trap> {
    proc.stats.slot_calls += 1;
    if generation != 0 {
        if let Some(id) = ic.lookup(generation) {
            proc.stats.ic_hits += 1;
            return Ok(Rc::clone(proc.function(id)));
        }
        proc.stats.ic_misses += 1;
        let id = proc
            .slot_target(ic.slot)
            .ok_or_else(|| Trap::UnboundSlot(proc.slot_name(ic.slot).to_string()))?;
        ic.fill(generation, id);
        return Ok(Rc::clone(proc.function(id)));
    }
    let id = proc
        .slot_target(ic.slot)
        .ok_or_else(|| Trap::UnboundSlot(proc.slot_name(ic.slot).to_string()))?;
    Ok(Rc::clone(proc.function(id)))
}

/// Runs `st` to completion (or suspension) against `proc`.
///
/// `honor_updates` gates whether `update.point` instructions can suspend;
/// state transformers and host-driven helper calls run with it off.
#[allow(clippy::too_many_lines)]
pub(crate) fn exec(
    proc: &mut Process,
    st: &mut ExecState,
    honor_updates: bool,
) -> Result<Outcome, Trap> {
    // The top frame's code, mirrored into a local so instruction fetch
    // borrows neither the frame stack nor the process. Re-synced on every
    // call and return.
    let mut func = Rc::clone(&st.frames.last().expect("at least one frame").func);
    // Nothing can rebind while `&mut Process` is held by this loop, so the
    // bind generation is a loop invariant; hoist it (0 = caching disabled,
    // which no real generation ever equals).
    let generation = if proc.inline_caching() {
        proc.bind_generation()
    } else {
        0
    };
    // An armed profiler mirrors the guest stack; re-entering execution
    // (fresh call, resume, host-driven helper) re-seeds the mirror from
    // the real frames so charged stacks stay truthful.
    if proc.profiler.is_some() {
        let names = st.frame_functions();
        let instrs = proc.stats.instrs;
        if let Some(p) = proc.profiler.as_deref_mut() {
            p.resync(&names, instrs);
        }
    }
    loop {
        let op = {
            let frame = st.frames.last().expect("frame");
            &func.decoded[frame.pc]
        };
        proc.stats.instrs += 1;
        if proc.stats.instrs >= proc.fuel_limit() {
            return Err(Trap::OutOfFuel);
        }

        // Call/return manipulate the frame stack; everything else operates
        // on the current frame only.
        match op {
            DOp::CallDirect(id) => {
                let callee = Rc::clone(proc.function(*id));
                st.frames.last_mut().expect("frame").pc += 1;
                func = Rc::clone(&callee);
                push_call(proc, st, callee)?;
                continue;
            }
            DOp::CallSlot(ic) => {
                let (h0, m0) = (proc.stats.ic_hits, proc.stats.ic_misses);
                let callee = resolve_slot_call(proc, ic, generation)?;
                if proc.profiler.is_some() {
                    let pc = st.frames.last().expect("frame").pc;
                    let (h, m) = (proc.stats.ic_hits - h0, proc.stats.ic_misses - m0);
                    if let Some(p) = proc.profiler.as_deref_mut() {
                        p.record_site(&func.name, pc, h, m);
                    }
                }
                st.frames.last_mut().expect("frame").pc += 1;
                func = Rc::clone(&callee);
                push_call(proc, st, callee)?;
                continue;
            }
            DOp::LoadLocalCallDirect(n, id) => {
                let callee = Rc::clone(proc.function(*id));
                let frame = st.frames.last_mut().expect("frame");
                let v = frame.locals[*n as usize].clone();
                frame.stack.push(v);
                frame.pc += 1;
                func = Rc::clone(&callee);
                push_call(proc, st, callee)?;
                continue;
            }
            DOp::LoadLocalCallSlot(n, ic) => {
                let (h0, m0) = (proc.stats.ic_hits, proc.stats.ic_misses);
                let callee = resolve_slot_call(proc, ic, generation)?;
                if proc.profiler.is_some() {
                    let pc = st.frames.last().expect("frame").pc;
                    let (h, m) = (proc.stats.ic_hits - h0, proc.stats.ic_misses - m0);
                    if let Some(p) = proc.profiler.as_deref_mut() {
                        p.record_site(&func.name, pc, h, m);
                    }
                }
                let frame = st.frames.last_mut().expect("frame");
                let v = frame.locals[*n as usize].clone();
                frame.stack.push(v);
                frame.pc += 1;
                func = Rc::clone(&callee);
                push_call(proc, st, callee)?;
                continue;
            }
            DOp::CallIndirect => {
                let fnref = {
                    let frame = st.frames.last_mut().expect("frame");
                    frame.pc += 1;
                    match frame.stack.pop().expect("verified: fn value") {
                        Value::Fn(r) => r,
                        v => panic!("verified code called non-function {v:?}"),
                    }
                };
                let id = proc.deref_fn(fnref)?;
                if matches!(fnref, FnRef::Slot(_)) {
                    proc.stats.slot_calls += 1;
                }
                let callee = Rc::clone(proc.function(id));
                func = Rc::clone(&callee);
                push_call(proc, st, callee)?;
                continue;
            }
            DOp::Ret => {
                let mut frame = st.frames.pop().expect("frame");
                let ret = frame.stack.pop().expect("verified: return value");
                if proc.profiler.is_some() {
                    let instrs = proc.stats.instrs;
                    if let Some(p) = proc.profiler.as_deref_mut() {
                        p.on_ret(instrs);
                    }
                }
                // Recycle the frame's buffers for future calls.
                if st.pool.len() < 64 {
                    frame.locals.clear();
                    frame.stack.clear();
                    st.pool.push((frame.locals, frame.stack));
                }
                match st.frames.last_mut() {
                    Some(caller) => {
                        caller.stack.push(ret);
                        func = Rc::clone(&caller.func);
                    }
                    None => return Ok(Outcome::Done(ret)),
                }
                continue;
            }
            DOp::UpdatePoint => {
                proc.stats.update_points += 1;
                st.frames.last_mut().expect("frame").pc += 1;
                if honor_updates && proc.update_requested() {
                    if proc.profiler.is_some() {
                        let instrs = proc.stats.instrs;
                        if let Some(p) = proc.profiler.as_deref_mut() {
                            p.on_suspend(instrs);
                        }
                    }
                    return Ok(Outcome::Suspended);
                }
                continue;
            }
            DOp::CallHost(id, argc) => {
                // Host arguments marshal through a reusable scratch
                // buffer: the host-call path allocates no more than the
                // frame-pooled guest-call path does.
                let ExecState {
                    frames, host_args, ..
                } = st;
                let frame = frames.last_mut().expect("frame");
                frame.pc += 1;
                let at = frame.stack.len() - *argc as usize;
                host_args.clear();
                host_args.extend(frame.stack.drain(at..));
                proc.stats.host_calls += 1;
                let ret = (proc.hosts[id.0 as usize].func)(host_args)?;
                host_args.clear();
                frame.stack.push(ret);
                continue;
            }
            _ => {}
        }

        let frame = st.frames.last_mut().expect("frame");
        step_local(proc, frame, op)?;
    }
}

fn push_call(
    proc: &mut Process,
    st: &mut ExecState,
    callee: Rc<LinkedFunction>,
) -> Result<(), Trap> {
    if st.frames.len() >= proc.max_stack_depth {
        return Err(Trap::StackOverflow);
    }
    proc.stats.calls += 1;
    let (mut locals, stack) = match st.pool.pop() {
        Some(buffers) => {
            proc.stats.pool_hits += 1;
            buffers
        }
        None => {
            proc.stats.pool_misses += 1;
            <(Vec<Value>, Vec<Value>)>::default()
        }
    };
    if proc.profiler.is_some() {
        let instrs = proc.stats.instrs;
        if let Some(p) = proc.profiler.as_deref_mut() {
            p.on_call(instrs, &callee.name);
        }
    }
    let caller = st.frames.last_mut().expect("frame");
    let at = caller.stack.len() - callee.param_count;
    locals.extend(caller.stack.drain(at..));
    for ty in &callee.locals[callee.param_count..] {
        locals.push(Value::default_for(ty));
    }
    st.frames.push(Frame {
        func: callee,
        pc: 0,
        locals,
        stack,
    });
    Ok(())
}

/// Executes an instruction that touches only the current frame (and the
/// process's globals). `proc.stats` is already incremented.
#[allow(clippy::too_many_lines)]
fn step_local(proc: &mut Process, frame: &mut Frame, op: &DOp) -> Result<(), Trap> {
    let stack = &mut frame.stack;
    macro_rules! int_binop {
        ($f:expr) => {{
            let b = stack.pop().expect("verified").as_int();
            let a = stack.pop().expect("verified").as_int();
            stack.push($f(a, b));
        }};
    }
    match op {
        // ---------------------------------------------- superinstructions
        DOp::CmpConstBranch(c, k, t) => {
            let a = stack.pop().expect("verified").as_int();
            if !c.eval(a, *k) {
                frame.pc = *t as usize;
                return Ok(());
            }
        }
        DOp::CmpBranch(c, t) => {
            let b = stack.pop().expect("verified").as_int();
            let a = stack.pop().expect("verified").as_int();
            if !c.eval(a, b) {
                frame.pc = *t as usize;
                return Ok(());
            }
        }
        DOp::AddConst(k) => {
            let a = stack.pop().expect("verified").as_int();
            stack.push(Value::Int(a.wrapping_add(*k)));
        }
        DOp::SubConst(k) => {
            let a = stack.pop().expect("verified").as_int();
            stack.push(Value::Int(a.wrapping_sub(*k)));
        }
        DOp::MulConst(k) => {
            let a = stack.pop().expect("verified").as_int();
            stack.push(Value::Int(a.wrapping_mul(*k)));
        }
        DOp::CmpConst(c, k) => {
            let a = stack.pop().expect("verified").as_int();
            stack.push(Value::Bool(c.eval(a, *k)));
        }
        DOp::LoadLocal2(n, m) => {
            let a = frame.locals[*n as usize].clone();
            let b = frame.locals[*m as usize].clone();
            stack.push(a);
            stack.push(b);
        }

        // ------------------------------------------------------ the rest
        DOp::PushUnit => stack.push(Value::Unit),
        DOp::PushInt(n) => stack.push(Value::Int(*n)),
        DOp::PushBool(b) => stack.push(Value::Bool(*b)),
        DOp::PushStr(s) => stack.push(Value::Str(Rc::clone(s))),
        DOp::PushNull => stack.push(Value::Null),
        DOp::PushFnDirect(id) => stack.push(Value::Fn(FnRef::Direct(*id))),
        DOp::PushFnSlot(slot) => stack.push(Value::Fn(FnRef::Slot(*slot))),
        DOp::LoadLocal(n) => {
            let v = frame.locals[*n as usize].clone();
            stack.push(v);
        }
        DOp::StoreLocal(n) => {
            frame.locals[*n as usize] = stack.pop().expect("verified");
        }
        DOp::LoadGlobal(id) => {
            // Lazy state transformation: a pending transformer runs on
            // first read (the flag clears first, so the transformer may
            // itself read this global and see the old value).
            if let Some(fid) = proc.global_cell(*id).pending_transform {
                let cell = proc.global_cell_mut(*id);
                cell.pending_transform = None;
                let old = cell.value.clone();
                let new = proc.call_fid(fid, vec![old])?;
                proc.global_cell_mut(*id).value = new;
            }
            let v = proc.global_cell(*id).value.clone();
            stack.push(v);
        }
        DOp::StoreGlobal(id) => {
            let v = stack.pop().expect("verified");
            let cell = proc.global_cell_mut(*id);
            // A whole-value overwrite by (necessarily new) code supersedes
            // any pending lazy transform.
            cell.pending_transform = None;
            cell.value = v;
        }
        DOp::Dup => {
            let v = stack.last().expect("verified").clone();
            stack.push(v);
        }
        DOp::Pop => {
            stack.pop().expect("verified");
        }
        DOp::Swap => {
            let n = stack.len();
            stack.swap(n - 1, n - 2);
        }
        DOp::Add => int_binop!(|a: i64, b: i64| Value::Int(a.wrapping_add(b))),
        DOp::Sub => int_binop!(|a: i64, b: i64| Value::Int(a.wrapping_sub(b))),
        DOp::Mul => int_binop!(|a: i64, b: i64| Value::Int(a.wrapping_mul(b))),
        DOp::Div => {
            let b = stack.pop().expect("verified").as_int();
            let a = stack.pop().expect("verified").as_int();
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            stack.push(Value::Int(a.wrapping_div(b)));
        }
        DOp::Rem => {
            let b = stack.pop().expect("verified").as_int();
            let a = stack.pop().expect("verified").as_int();
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            stack.push(Value::Int(a.wrapping_rem(b)));
        }
        DOp::Neg => {
            let a = stack.pop().expect("verified").as_int();
            stack.push(Value::Int(a.wrapping_neg()));
        }
        DOp::IntCmp(c) => int_binop!(|a, b| Value::Bool(c.eval(a, b))),
        DOp::And => {
            let b = stack.pop().expect("verified").as_bool();
            let a = stack.pop().expect("verified").as_bool();
            stack.push(Value::Bool(a && b));
        }
        DOp::Or => {
            let b = stack.pop().expect("verified").as_bool();
            let a = stack.pop().expect("verified").as_bool();
            stack.push(Value::Bool(a || b));
        }
        DOp::Not => {
            let a = stack.pop().expect("verified").as_bool();
            stack.push(Value::Bool(!a));
        }
        DOp::Concat => {
            let b = stack.pop().expect("verified").as_str();
            let a = stack.pop().expect("verified").as_str();
            let mut s = String::with_capacity(a.len() + b.len());
            s.push_str(&a);
            s.push_str(&b);
            stack.push(Value::str(s));
        }
        DOp::StrLen => {
            let s = stack.pop().expect("verified").as_str();
            stack.push(Value::Int(s.len() as i64));
        }
        DOp::Substr => {
            let len = stack.pop().expect("verified").as_int();
            let start = stack.pop().expect("verified").as_int();
            let s = stack.pop().expect("verified").as_str();
            let start = start.clamp(0, s.len() as i64) as usize;
            let end = (start as i64 + len.max(0)).clamp(start as i64, s.len() as i64) as usize;
            // Clamp to char boundaries to keep the operation total on UTF-8.
            let start = floor_char_boundary(&s, start);
            let end = floor_char_boundary(&s, end);
            stack.push(Value::str(&s[start..end]));
        }
        DOp::CharAt => {
            let i = stack.pop().expect("verified").as_int();
            let s = stack.pop().expect("verified").as_str();
            if i < 0 || i as usize >= s.len() {
                return Err(Trap::IndexOutOfBounds {
                    index: i,
                    len: s.len(),
                });
            }
            stack.push(Value::Int(i64::from(s.as_bytes()[i as usize])));
        }
        DOp::StrEq => {
            let b = stack.pop().expect("verified").as_str();
            let a = stack.pop().expect("verified").as_str();
            stack.push(Value::Bool(a == b));
        }
        DOp::StrFind => {
            let needle = stack.pop().expect("verified").as_str();
            let hay = stack.pop().expect("verified").as_str();
            let pos = hay.find(&*needle).map_or(-1, |p| p as i64);
            stack.push(Value::Int(pos));
        }
        DOp::IntToStr => {
            let n = stack.pop().expect("verified").as_int();
            stack.push(Value::str(n.to_string()));
        }
        DOp::StrToInt => {
            let s = stack.pop().expect("verified").as_str();
            stack.push(Value::Int(atoi(&s)));
        }
        DOp::Jump(t) => {
            frame.pc = *t as usize;
            return Ok(());
        }
        DOp::JumpIfFalse(t) => {
            let c = stack.pop().expect("verified").as_bool();
            if !c {
                frame.pc = *t as usize;
                return Ok(());
            }
        }
        DOp::NewRecord(sid, n) => {
            let at = stack.len() - *n as usize;
            let fields = stack.split_off(at);
            stack.push(Value::record(*sid, fields));
        }
        DOp::GetField(i) => {
            let r = stack.pop().expect("verified");
            match r {
                Value::Record(rec) => {
                    let v = rec.fields.borrow()[*i as usize].clone();
                    stack.push(v);
                }
                Value::Null => return Err(Trap::NullDeref),
                v => panic!("verified code read field of {v:?}"),
            }
        }
        DOp::SetField(i) => {
            let v = stack.pop().expect("verified");
            let r = stack.pop().expect("verified");
            match r {
                Value::Record(rec) => rec.fields.borrow_mut()[*i as usize] = v,
                Value::Null => return Err(Trap::NullDeref),
                other => panic!("verified code wrote field of {other:?}"),
            }
        }
        DOp::IsNull => {
            let r = stack.pop().expect("verified");
            stack.push(Value::Bool(matches!(r, Value::Null)));
        }
        DOp::NewArray => stack.push(Value::empty_array()),
        DOp::ArrayGet => {
            let i = stack.pop().expect("verified").as_int();
            let a = stack.pop().expect("verified");
            let Value::Array(a) = a else {
                panic!("verified code indexed {a:?}")
            };
            let a = a.borrow();
            if i < 0 || i as usize >= a.len() {
                return Err(Trap::IndexOutOfBounds {
                    index: i,
                    len: a.len(),
                });
            }
            stack.push(a[i as usize].clone());
        }
        DOp::ArraySet => {
            let v = stack.pop().expect("verified");
            let i = stack.pop().expect("verified").as_int();
            let a = stack.pop().expect("verified");
            let Value::Array(a) = a else {
                panic!("verified code indexed {a:?}")
            };
            let mut a = a.borrow_mut();
            if i < 0 || i as usize >= a.len() {
                return Err(Trap::IndexOutOfBounds {
                    index: i,
                    len: a.len(),
                });
            }
            a[i as usize] = v;
        }
        DOp::ArrayLen => {
            let a = stack.pop().expect("verified");
            let Value::Array(a) = a else {
                panic!("verified code measured {a:?}")
            };
            let n = a.borrow().len();
            stack.push(Value::Int(n as i64));
        }
        DOp::ArrayPush => {
            let v = stack.pop().expect("verified");
            let a = stack.pop().expect("verified");
            let Value::Array(a) = a else {
                panic!("verified code pushed to {a:?}")
            };
            a.borrow_mut().push(v);
        }
        DOp::Nop => {}
        DOp::Unreachable => {
            return Err(Trap::Host("garbage-collected code executed".to_string()));
        }
        DOp::CallDirect(_)
        | DOp::CallSlot(_)
        | DOp::LoadLocalCallDirect(_, _)
        | DOp::LoadLocalCallSlot(_, _)
        | DOp::CallIndirect
        | DOp::CallHost(_, _)
        | DOp::Ret
        | DOp::UpdatePoint => unreachable!("handled by the outer loop"),
    }
    frame.pc += 1;
    Ok(())
}

/// Largest byte index `<= i` that is a UTF-8 character boundary of `s`.
fn floor_char_boundary(s: &str, mut i: usize) -> usize {
    if i >= s.len() {
        return s.len();
    }
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// C-style `atoi`: optional sign, leading digits, `0` on no digits;
/// saturates on overflow.
fn atoi(s: &str) -> i64 {
    let s = s.trim_start();
    let (neg, rest) = match s.as_bytes().first() {
        Some(b'-') => (true, &s[1..]),
        Some(b'+') => (false, &s[1..]),
        _ => (false, s),
    };
    let mut n: i64 = 0;
    for b in rest.bytes().take_while(u8::is_ascii_digit) {
        n = n.saturating_mul(10).saturating_add(i64::from(b - b'0'));
    }
    if neg {
        -n
    } else {
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoi_matches_c_semantics() {
        assert_eq!(atoi("42"), 42);
        assert_eq!(atoi("  -17"), -17);
        assert_eq!(atoi("+8"), 8);
        assert_eq!(atoi("12abc"), 12);
        assert_eq!(atoi("abc"), 0);
        assert_eq!(atoi(""), 0);
        assert_eq!(atoi("999999999999999999999999"), i64::MAX);
    }

    #[test]
    fn char_boundary_floor() {
        let s = "aé"; // 'é' occupies bytes 1..3
        assert_eq!(floor_char_boundary(s, 2), 1);
        assert_eq!(floor_char_boundary(s, 3), 3);
        assert_eq!(floor_char_boundary(s, 10), 3);
    }
}
