//! The interpreter.
//!
//! Execution uses an explicit frame stack so a run can be *suspended* at an
//! update point and resumed after a dynamic patch has been applied. Frames
//! hold an `Rc` to their code: a frame that was executing a function when
//! it got replaced finishes under the old code — the paper's semantics for
//! updating active code.

use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::ops::Op;
use crate::process::{LinkedFunction, Process};
use crate::trap::Trap;
use crate::value::{FnRef, Value};

/// Cumulative execution counters, used by the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub instrs: u64,
    /// Guest-to-guest calls.
    pub calls: u64,
    /// Calls that went through an indirection-table slot.
    pub slot_calls: u64,
    /// Host calls.
    pub host_calls: u64,
    /// Update points executed (whether or not they suspended).
    pub update_points: u64,
}

/// A cross-thread mirror of one process's [`ExecStats`].
///
/// The interpreter's own counters stay plain `u64` fields on the
/// (thread-local) [`Process`] — the hot path pays nothing for
/// observability. An embedder that wants live telemetry *publishes* the
/// counters into one of these at its natural quiescent boundaries
/// (serve-loop iterations, update points): relaxed atomic stores, so a
/// scraper on another thread reads a recent — not torn — snapshot.
#[derive(Debug, Default)]
pub struct ExecStatsShared {
    instrs: AtomicU64,
    calls: AtomicU64,
    slot_calls: AtomicU64,
    host_calls: AtomicU64,
    update_points: AtomicU64,
}

impl ExecStatsShared {
    /// Creates a zeroed mirror.
    pub fn new() -> ExecStatsShared {
        ExecStatsShared::default()
    }

    /// Publishes `stats` (relaxed stores; cheap enough for every
    /// serve-loop iteration).
    pub fn publish(&self, stats: &ExecStats) {
        self.instrs.store(stats.instrs, Ordering::Relaxed);
        self.calls.store(stats.calls, Ordering::Relaxed);
        self.slot_calls.store(stats.slot_calls, Ordering::Relaxed);
        self.host_calls.store(stats.host_calls, Ordering::Relaxed);
        self.update_points
            .store(stats.update_points, Ordering::Relaxed);
    }

    /// The most recently published counters (relaxed loads).
    pub fn snapshot(&self) -> ExecStats {
        ExecStats {
            instrs: self.instrs.load(Ordering::Relaxed),
            calls: self.calls.load(Ordering::Relaxed),
            slot_calls: self.slot_calls.load(Ordering::Relaxed),
            host_calls: self.host_calls.load(Ordering::Relaxed),
            update_points: self.update_points.load(Ordering::Relaxed),
        }
    }
}

/// One activation record.
#[derive(Debug)]
pub struct Frame {
    /// The code this frame executes (pinned: survives rebinding).
    pub func: Rc<LinkedFunction>,
    /// Next instruction index.
    pub pc: usize,
    /// Local slots (parameters first).
    pub locals: Vec<Value>,
    /// Operand stack.
    pub stack: Vec<Value>,
}

impl Frame {
    /// Builds a frame for `func` with `args` already bound to the leading
    /// locals; remaining locals take their type's default value.
    pub fn new(func: Rc<LinkedFunction>, args: Vec<Value>) -> Frame {
        let mut locals = args;
        for ty in &func.locals[locals.len()..] {
            locals.push(Value::default_for(ty));
        }
        Frame {
            func,
            pc: 0,
            locals,
            stack: Vec::new(),
        }
    }
}

/// A (possibly suspended) execution: the guest call stack.
///
/// Finished frames donate their `locals`/`stack` buffers to a small pool
/// so the hot call path does not allocate — keeping per-call cost low
/// enough that the *dispatch* difference between static and updateable
/// linking (the paper's overhead experiment) is what dominates.
#[derive(Debug)]
pub struct ExecState {
    frames: Vec<Frame>,
    pool: Vec<(Vec<Value>, Vec<Value>)>,
}

impl ExecState {
    /// Starts an execution with a single entry frame.
    pub fn with_frame(frame: Frame) -> ExecState {
        ExecState {
            frames: vec![frame],
            pool: Vec::new(),
        }
    }

    /// Names of the functions on the stack, outermost first.
    pub fn frame_functions(&self) -> Vec<String> {
        self.frames.iter().map(|f| f.func.name.clone()).collect()
    }

    /// The code of every frame on the stack, outermost first.
    pub fn frame_codes(&self) -> Vec<Rc<LinkedFunction>> {
        self.frames.iter().map(|f| Rc::clone(&f.func)).collect()
    }

    /// Every value held in any frame's locals or operand stack (the code
    /// garbage collector scans these for live function values).
    pub fn frame_values(&self) -> impl Iterator<Item = &Value> {
        self.frames
            .iter()
            .flat_map(|f| f.locals.iter().chain(f.stack.iter()))
    }
}

/// Why `exec` returned.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The entry frame returned this value.
    Done(Value),
    /// The guest reached an update point while an update was pending; the
    /// execution state is retained for [`Process::resume`].
    Suspended,
}

/// Runs `st` to completion (or suspension) against `proc`.
///
/// `honor_updates` gates whether `update.point` instructions can suspend;
/// state transformers and host-driven helper calls run with it off.
pub(crate) fn exec(
    proc: &mut Process,
    st: &mut ExecState,
    honor_updates: bool,
) -> Result<Outcome, Trap> {
    loop {
        // Fetch. The clone is cheap: most ops are plain enum data, strings
        // are reference-counted.
        let op = {
            let frame = st.frames.last().expect("at least one frame");
            frame.func.code[frame.pc].clone()
        };
        proc.stats.instrs += 1;
        if proc.stats.instrs >= proc.fuel_limit() {
            return Err(Trap::OutOfFuel);
        }

        // Call/return manipulate the frame stack; everything else operates
        // on the current frame only.
        match op {
            Op::CallDirect(id) => {
                let frame = st.frames.last_mut().expect("frame");
                frame.pc += 1;
                let callee = Rc::clone(proc.function(id));
                push_call(proc, st, callee)?;
                continue;
            }
            Op::CallSlot(slot) => {
                let id = proc
                    .slot_target(slot)
                    .ok_or_else(|| Trap::UnboundSlot(proc.slot_name(slot).to_string()))?;
                let frame = st.frames.last_mut().expect("frame");
                frame.pc += 1;
                let callee = Rc::clone(proc.function(id));
                proc.stats.slot_calls += 1;
                push_call(proc, st, callee)?;
                continue;
            }
            Op::CallIndirect => {
                let fnref = {
                    let frame = st.frames.last_mut().expect("frame");
                    frame.pc += 1;
                    match frame.stack.pop().expect("verified: fn value") {
                        Value::Fn(r) => r,
                        v => panic!("verified code called non-function {v:?}"),
                    }
                };
                let id = proc.deref_fn(fnref)?;
                if matches!(fnref, FnRef::Slot(_)) {
                    proc.stats.slot_calls += 1;
                }
                let callee = Rc::clone(proc.function(id));
                push_call(proc, st, callee)?;
                continue;
            }
            Op::Ret => {
                let mut frame = st.frames.pop().expect("frame");
                let ret = frame.stack.pop().expect("verified: return value");
                // Recycle the frame's buffers for future calls.
                if st.pool.len() < 64 {
                    frame.locals.clear();
                    frame.stack.clear();
                    st.pool.push((frame.locals, frame.stack));
                }
                match st.frames.last_mut() {
                    Some(caller) => caller.stack.push(ret),
                    None => return Ok(Outcome::Done(ret)),
                }
                continue;
            }
            Op::UpdatePoint => {
                proc.stats.update_points += 1;
                let frame = st.frames.last_mut().expect("frame");
                frame.pc += 1;
                if honor_updates && proc.update_requested() {
                    return Ok(Outcome::Suspended);
                }
                continue;
            }
            Op::CallHost(id, argc) => {
                let args = {
                    let frame = st.frames.last_mut().expect("frame");
                    frame.pc += 1;
                    let at = frame.stack.len() - argc as usize;
                    frame.stack.split_off(at)
                };
                proc.stats.host_calls += 1;
                let ret = (proc.hosts[id.0 as usize].func)(&args)?;
                st.frames.last_mut().expect("frame").stack.push(ret);
                continue;
            }
            _ => {}
        }

        let frame = st.frames.last_mut().expect("frame");
        step_local(proc, frame, op)?;
    }
}

fn push_call(
    proc: &mut Process,
    st: &mut ExecState,
    callee: Rc<LinkedFunction>,
) -> Result<(), Trap> {
    if st.frames.len() >= proc.max_stack_depth {
        return Err(Trap::StackOverflow);
    }
    proc.stats.calls += 1;
    let (mut locals, stack) = st.pool.pop().unwrap_or_default();
    let caller = st.frames.last_mut().expect("frame");
    let at = caller.stack.len() - callee.param_count;
    locals.extend(caller.stack.drain(at..));
    for ty in &callee.locals[callee.param_count..] {
        locals.push(Value::default_for(ty));
    }
    st.frames.push(Frame {
        func: callee,
        pc: 0,
        locals,
        stack,
    });
    Ok(())
}

/// Executes an instruction that touches only the current frame (and the
/// process's globals). `proc.stats` is already incremented.
#[allow(clippy::too_many_lines)]
fn step_local(proc: &mut Process, frame: &mut Frame, op: Op) -> Result<(), Trap> {
    let stack = &mut frame.stack;
    macro_rules! int_binop {
        ($f:expr) => {{
            let b = stack.pop().expect("verified").as_int();
            let a = stack.pop().expect("verified").as_int();
            stack.push($f(a, b));
        }};
    }
    match op {
        Op::PushUnit => stack.push(Value::Unit),
        Op::PushInt(n) => stack.push(Value::Int(n)),
        Op::PushBool(b) => stack.push(Value::Bool(b)),
        Op::PushStr(s) => stack.push(Value::Str(s)),
        Op::PushNull => stack.push(Value::Null),
        Op::PushFnDirect(id) => stack.push(Value::Fn(FnRef::Direct(id))),
        Op::PushFnSlot(slot) => stack.push(Value::Fn(FnRef::Slot(slot))),
        Op::LoadLocal(n) => {
            let v = frame.locals[n as usize].clone();
            stack.push(v);
        }
        Op::StoreLocal(n) => {
            frame.locals[n as usize] = stack.pop().expect("verified");
        }
        Op::LoadGlobal(id) => {
            // Lazy state transformation: a pending transformer runs on
            // first read (the flag clears first, so the transformer may
            // itself read this global and see the old value).
            if let Some(fid) = proc.global_cell(id).pending_transform {
                let cell = proc.global_cell_mut(id);
                cell.pending_transform = None;
                let old = cell.value.clone();
                let new = proc.call_fid(fid, vec![old])?;
                proc.global_cell_mut(id).value = new;
            }
            let v = proc.global_cell(id).value.clone();
            stack.push(v);
        }
        Op::StoreGlobal(id) => {
            let v = stack.pop().expect("verified");
            let cell = proc.global_cell_mut(id);
            // A whole-value overwrite by (necessarily new) code supersedes
            // any pending lazy transform.
            cell.pending_transform = None;
            cell.value = v;
        }
        Op::Dup => {
            let v = stack.last().expect("verified").clone();
            stack.push(v);
        }
        Op::Pop => {
            stack.pop().expect("verified");
        }
        Op::Swap => {
            let n = stack.len();
            stack.swap(n - 1, n - 2);
        }
        Op::Add => int_binop!(|a: i64, b: i64| Value::Int(a.wrapping_add(b))),
        Op::Sub => int_binop!(|a: i64, b: i64| Value::Int(a.wrapping_sub(b))),
        Op::Mul => int_binop!(|a: i64, b: i64| Value::Int(a.wrapping_mul(b))),
        Op::Div => {
            let b = stack.pop().expect("verified").as_int();
            let a = stack.pop().expect("verified").as_int();
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            stack.push(Value::Int(a.wrapping_div(b)));
        }
        Op::Rem => {
            let b = stack.pop().expect("verified").as_int();
            let a = stack.pop().expect("verified").as_int();
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            stack.push(Value::Int(a.wrapping_rem(b)));
        }
        Op::Neg => {
            let a = stack.pop().expect("verified").as_int();
            stack.push(Value::Int(a.wrapping_neg()));
        }
        Op::Eq => int_binop!(|a, b| Value::Bool(a == b)),
        Op::Ne => int_binop!(|a, b| Value::Bool(a != b)),
        Op::Lt => int_binop!(|a, b| Value::Bool(a < b)),
        Op::Le => int_binop!(|a, b| Value::Bool(a <= b)),
        Op::Gt => int_binop!(|a, b| Value::Bool(a > b)),
        Op::Ge => int_binop!(|a, b| Value::Bool(a >= b)),
        Op::And => {
            let b = stack.pop().expect("verified").as_bool();
            let a = stack.pop().expect("verified").as_bool();
            stack.push(Value::Bool(a && b));
        }
        Op::Or => {
            let b = stack.pop().expect("verified").as_bool();
            let a = stack.pop().expect("verified").as_bool();
            stack.push(Value::Bool(a || b));
        }
        Op::Not => {
            let a = stack.pop().expect("verified").as_bool();
            stack.push(Value::Bool(!a));
        }
        Op::Concat => {
            let b = stack.pop().expect("verified").as_str();
            let a = stack.pop().expect("verified").as_str();
            let mut s = String::with_capacity(a.len() + b.len());
            s.push_str(&a);
            s.push_str(&b);
            stack.push(Value::str(s));
        }
        Op::StrLen => {
            let s = stack.pop().expect("verified").as_str();
            stack.push(Value::Int(s.len() as i64));
        }
        Op::Substr => {
            let len = stack.pop().expect("verified").as_int();
            let start = stack.pop().expect("verified").as_int();
            let s = stack.pop().expect("verified").as_str();
            let start = start.clamp(0, s.len() as i64) as usize;
            let end = (start as i64 + len.max(0)).clamp(start as i64, s.len() as i64) as usize;
            // Clamp to char boundaries to keep the operation total on UTF-8.
            let start = floor_char_boundary(&s, start);
            let end = floor_char_boundary(&s, end);
            stack.push(Value::str(&s[start..end]));
        }
        Op::CharAt => {
            let i = stack.pop().expect("verified").as_int();
            let s = stack.pop().expect("verified").as_str();
            if i < 0 || i as usize >= s.len() {
                return Err(Trap::IndexOutOfBounds {
                    index: i,
                    len: s.len(),
                });
            }
            stack.push(Value::Int(i64::from(s.as_bytes()[i as usize])));
        }
        Op::StrEq => {
            let b = stack.pop().expect("verified").as_str();
            let a = stack.pop().expect("verified").as_str();
            stack.push(Value::Bool(a == b));
        }
        Op::StrFind => {
            let needle = stack.pop().expect("verified").as_str();
            let hay = stack.pop().expect("verified").as_str();
            let pos = hay.find(&*needle).map_or(-1, |p| p as i64);
            stack.push(Value::Int(pos));
        }
        Op::IntToStr => {
            let n = stack.pop().expect("verified").as_int();
            stack.push(Value::str(n.to_string()));
        }
        Op::StrToInt => {
            let s = stack.pop().expect("verified").as_str();
            stack.push(Value::Int(atoi(&s)));
        }
        Op::Jump(t) => {
            frame.pc = t as usize;
            return Ok(());
        }
        Op::JumpIfFalse(t) => {
            let c = stack.pop().expect("verified").as_bool();
            if !c {
                frame.pc = t as usize;
                return Ok(());
            }
        }
        Op::NewRecord(sid, n) => {
            let at = stack.len() - n as usize;
            let fields = stack.split_off(at);
            stack.push(Value::record(sid, fields));
        }
        Op::GetField(i) => {
            let r = stack.pop().expect("verified");
            match r {
                Value::Record(rec) => {
                    let v = rec.fields.borrow()[i as usize].clone();
                    stack.push(v);
                }
                Value::Null => return Err(Trap::NullDeref),
                v => panic!("verified code read field of {v:?}"),
            }
        }
        Op::SetField(i) => {
            let v = stack.pop().expect("verified");
            let r = stack.pop().expect("verified");
            match r {
                Value::Record(rec) => rec.fields.borrow_mut()[i as usize] = v,
                Value::Null => return Err(Trap::NullDeref),
                other => panic!("verified code wrote field of {other:?}"),
            }
        }
        Op::IsNull => {
            let r = stack.pop().expect("verified");
            stack.push(Value::Bool(matches!(r, Value::Null)));
        }
        Op::NewArray => stack.push(Value::empty_array()),
        Op::ArrayGet => {
            let i = stack.pop().expect("verified").as_int();
            let a = stack.pop().expect("verified");
            let Value::Array(a) = a else {
                panic!("verified code indexed {a:?}")
            };
            let a = a.borrow();
            if i < 0 || i as usize >= a.len() {
                return Err(Trap::IndexOutOfBounds {
                    index: i,
                    len: a.len(),
                });
            }
            stack.push(a[i as usize].clone());
        }
        Op::ArraySet => {
            let v = stack.pop().expect("verified");
            let i = stack.pop().expect("verified").as_int();
            let a = stack.pop().expect("verified");
            let Value::Array(a) = a else {
                panic!("verified code indexed {a:?}")
            };
            let mut a = a.borrow_mut();
            if i < 0 || i as usize >= a.len() {
                return Err(Trap::IndexOutOfBounds {
                    index: i,
                    len: a.len(),
                });
            }
            a[i as usize] = v;
        }
        Op::ArrayLen => {
            let a = stack.pop().expect("verified");
            let Value::Array(a) = a else {
                panic!("verified code measured {a:?}")
            };
            let n = a.borrow().len();
            stack.push(Value::Int(n as i64));
        }
        Op::ArrayPush => {
            let v = stack.pop().expect("verified");
            let a = stack.pop().expect("verified");
            let Value::Array(a) = a else {
                panic!("verified code pushed to {a:?}")
            };
            a.borrow_mut().push(v);
        }
        Op::Nop => {}
        Op::Unreachable => {
            return Err(Trap::Host("garbage-collected code executed".to_string()));
        }
        Op::CallDirect(_)
        | Op::CallSlot(_)
        | Op::CallIndirect
        | Op::CallHost(_, _)
        | Op::Ret
        | Op::UpdatePoint => unreachable!("handled by the outer loop"),
    }
    frame.pc += 1;
    Ok(())
}

/// Largest byte index `<= i` that is a UTF-8 character boundary of `s`.
fn floor_char_boundary(s: &str, mut i: usize) -> usize {
    if i >= s.len() {
        return s.len();
    }
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// C-style `atoi`: optional sign, leading digits, `0` on no digits;
/// saturates on overflow.
fn atoi(s: &str) -> i64 {
    let s = s.trim_start();
    let (neg, rest) = match s.as_bytes().first() {
        Some(b'-') => (true, &s[1..]),
        Some(b'+') => (false, &s[1..]),
        _ => (false, s),
    };
    let mut n: i64 = 0;
    for b in rest.bytes().take_while(u8::is_ascii_digit) {
        n = n.saturating_mul(10).saturating_add(i64::from(b - b'0'));
    }
    if neg {
        -n
    } else {
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoi_matches_c_semantics() {
        assert_eq!(atoi("42"), 42);
        assert_eq!(atoi("  -17"), -17);
        assert_eq!(atoi("+8"), 8);
        assert_eq!(atoi("12abc"), 12);
        assert_eq!(atoi("abc"), 0);
        assert_eq!(atoi(""), 0);
        assert_eq!(atoi("999999999999999999999999"), i64::MAX);
    }

    #[test]
    fn char_boundary_floor() {
        let s = "aé"; // 'é' occupies bytes 1..3
        assert_eq!(floor_char_boundary(s, 2), 1);
        assert_eq!(floor_char_boundary(s, 3), 3);
        assert_eq!(floor_char_boundary(s, 10), 3);
    }
}
