//! Opt-in per-function execution profiling for the decoded-dispatch loop.
//!
//! When a [`Profiler`] is armed on a [`crate::Process`], the interpreter
//! feeds it at *control-flow edges only* — call, return, suspension —
//! never per instruction: the profiler mirrors the guest stack as a
//! collapsed key (`"serve;handle;render"`) and charges the decoded-op
//! delta since the previous edge to the stack that executed it. Slot
//! calls additionally record per-call-site inline-cache hit/miss
//! counts, so "which site went cold after the patch" is answerable
//! directly.
//!
//! Export formats:
//!
//! * [`Profiler::collapsed`] — collapsed-stack lines (`a;b;c 1234`),
//!   the format flamegraph tooling ingests;
//! * [`Profiler::report`] — a per-function table with dispatch counts,
//!   self and inclusive decoded ops, and per-site ic hit rates.
//!
//! The cost model matches the rest of the VM's observability: nothing
//! on the hot path when disarmed (one `Option` check per call/return
//! when armed), and the paper's dispatch-overhead numbers stay valid
//! because profiling is off everywhere by default.
//!
//! Known imprecision: host-driven reentrant guest calls (e.g. a lazy
//! state transformer firing mid-read) resync the mirrored stack to the
//! inner execution; decoded ops the *outer* frame retires before its
//! next call/return edge are then charged to the caller's truncated
//! stack. The counts stay total — only their stack key coarsens.

use std::collections::HashMap;

/// Inline-cache behaviour of one slot-call site (function + decoded pc).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Calls answered by the warm inline cache.
    pub hits: u64,
    /// Calls that (re-)resolved through the indirection table.
    pub misses: u64,
}

/// Collapsed-stack profiler state (see module docs).
#[derive(Debug, Default)]
pub struct Profiler {
    /// Mirror of the guest stack, outermost first.
    stack: Vec<String>,
    /// `stack` joined with `;` — maintained incrementally so a call
    /// edge is a push + two string appends, not a re-join.
    key: String,
    /// `Process::stats.instrs` at the last flush.
    last_instrs: u64,
    /// Decoded ops retired per collapsed stack.
    by_stack: HashMap<String, u64>,
    /// Invocations per function (dispatch counts).
    calls: HashMap<String, u64>,
    /// Inline-cache behaviour per `(function, decoded pc)` call site.
    sites: HashMap<(String, usize), SiteStats>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Charges ops retired since the last edge to the current stack.
    fn flush(&mut self, instrs_now: u64) {
        let delta = instrs_now.saturating_sub(self.last_instrs);
        self.last_instrs = instrs_now;
        if delta > 0 && !self.key.is_empty() {
            *self.by_stack.entry(self.key.clone()).or_insert(0) += delta;
        }
    }

    /// Call edge: flush, then push `callee` onto the mirrored stack.
    pub fn on_call(&mut self, instrs_now: u64, callee: &str) {
        self.flush(instrs_now);
        if !self.key.is_empty() {
            self.key.push(';');
        }
        self.key.push_str(callee);
        self.stack.push(callee.to_string());
        *self.calls.entry(callee.to_string()).or_insert(0) += 1;
    }

    /// Return edge: flush, then pop the mirrored stack.
    pub fn on_ret(&mut self, instrs_now: u64) {
        self.flush(instrs_now);
        if let Some(top) = self.stack.pop() {
            let cut = self.key.len() - top.len();
            self.key
                .truncate(cut.saturating_sub(usize::from(!self.key[..cut].is_empty())));
        }
    }

    /// Suspension edge (update point): flush so the suspended stack's
    /// ops are charged before the pause.
    pub fn on_suspend(&mut self, instrs_now: u64) {
        self.flush(instrs_now);
    }

    /// Re-enters execution with stack `names` (outermost first): resets
    /// the mirror without charging the gap (ops retired outside guest
    /// execution do not exist).
    pub fn resync(&mut self, names: &[String], instrs_now: u64) {
        self.stack = names.to_vec();
        self.key = names.join(";");
        self.last_instrs = instrs_now;
    }

    /// Records one slot call's inline-cache outcome at `(func, pc)`.
    pub fn record_site(&mut self, func: &str, pc: usize, hits: u64, misses: u64) {
        let s = self.sites.entry((func.to_string(), pc)).or_default();
        s.hits += hits;
        s.misses += misses;
    }

    /// Total decoded ops charged so far (over all stacks).
    pub fn total_ops(&self) -> u64 {
        self.by_stack.values().sum()
    }

    /// Invocation count per function, sorted descending.
    pub fn dispatch_counts(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self.calls.iter().map(|(n, c)| (n.clone(), *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Per-site inline-cache stats, sorted by (function, pc).
    pub fn site_stats(&self) -> Vec<((String, usize), SiteStats)> {
        let mut v: Vec<((String, usize), SiteStats)> =
            self.sites.iter().map(|(k, s)| (k.clone(), *s)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Self and *inclusive* decoded ops per function. Inclusive is the
    /// sum over every stack the function appears on (counted once per
    /// stack, so recursion does not double-charge).
    pub fn function_ops(&self) -> Vec<(String, u64, u64)> {
        let mut self_ops: HashMap<&str, u64> = HashMap::new();
        let mut incl_ops: HashMap<&str, u64> = HashMap::new();
        for (key, ops) in &self.by_stack {
            let frames: Vec<&str> = key.split(';').collect();
            if let Some(leaf) = frames.last() {
                *self_ops.entry(leaf).or_insert(0) += ops;
            }
            let mut seen: Vec<&str> = Vec::with_capacity(frames.len());
            for f in frames {
                if !seen.contains(&f) {
                    seen.push(f);
                    *incl_ops.entry(f).or_insert(0) += ops;
                }
            }
        }
        let mut v: Vec<(String, u64, u64)> = incl_ops
            .iter()
            .map(|(n, incl)| {
                (
                    (*n).to_string(),
                    self_ops.get(n).copied().unwrap_or(0),
                    *incl,
                )
            })
            .collect();
        v.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        v
    }

    /// Collapsed-stack export (`a;b;c <ops>` per line, sorted by stack
    /// key) — feed straight into flamegraph tooling.
    pub fn collapsed(&self) -> String {
        let mut lines: Vec<(&String, &u64)> = self.by_stack.iter().collect();
        lines.sort_by(|a, b| a.0.cmp(b.0));
        let mut out = String::new();
        for (key, ops) in lines {
            out.push_str(key);
            out.push(' ');
            out.push_str(&ops.to_string());
            out.push('\n');
        }
        out
    }

    /// Human-readable profile: per-function table (dispatches, self,
    /// inclusive) plus the per-site inline-cache table.
    pub fn report(&self) -> String {
        let mut out = format!(
            "{:<24} {:>12} {:>14} {:>14}\n",
            "function", "dispatches", "self ops", "incl ops"
        );
        for (name, self_ops, incl) in self.function_ops() {
            let dispatches = self.calls.get(&name).copied().unwrap_or(0);
            out.push_str(&format!(
                "{name:<24} {dispatches:>12} {self_ops:>14} {incl:>14}\n"
            ));
        }
        let sites = self.site_stats();
        if !sites.is_empty() {
            out.push_str(&format!(
                "\n{:<24} {:>6} {:>12} {:>12} {:>9}\n",
                "call site", "pc", "ic hits", "ic misses", "hit rate"
            ));
            for ((func, pc), s) in sites {
                let total = s.hits + s.misses;
                let rate = if total == 0 {
                    0.0
                } else {
                    100.0 * s.hits as f64 / total as f64
                };
                out.push_str(&format!(
                    "{func:<24} {pc:>6} {:>12} {:>12} {rate:>8.1}%\n",
                    s.hits, s.misses
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_build_collapsed_stacks() {
        let mut p = Profiler::new();
        p.on_call(0, "main"); // enter main at op 0
        p.on_call(10, "helper"); // main ran 10 ops
        p.on_ret(25); // helper ran 15 ops
        p.on_ret(30); // main ran 5 more
        let collapsed = p.collapsed();
        assert!(collapsed.contains("main 15\n"), "{collapsed}");
        assert!(collapsed.contains("main;helper 15\n"), "{collapsed}");
        assert_eq!(p.total_ops(), 30);

        let fns = p.function_ops();
        let main = fns.iter().find(|f| f.0 == "main").unwrap();
        assert_eq!((main.1, main.2), (15, 30), "self 15, inclusive 30");
        let helper = fns.iter().find(|f| f.0 == "helper").unwrap();
        assert_eq!((helper.1, helper.2), (15, 15));
        assert_eq!(p.dispatch_counts()[0].1, 1);
    }

    #[test]
    fn recursion_counts_inclusive_once() {
        let mut p = Profiler::new();
        p.on_call(0, "f");
        p.on_call(5, "f");
        p.on_ret(15);
        p.on_ret(20);
        let fns = p.function_ops();
        let f = fns.iter().find(|x| x.0 == "f").unwrap();
        assert_eq!(f.2, 20, "recursive frames counted once per stack");
        assert_eq!(f.1, 20, "both leaves are f");
    }

    #[test]
    fn resync_restores_a_suspended_stack() {
        let mut p = Profiler::new();
        p.on_call(0, "serve");
        p.on_suspend(40);
        // ...update pause happens, execution resumes...
        p.resync(&["serve".to_string()], 40);
        p.on_ret(50);
        assert_eq!(p.total_ops(), 50);
        assert!(p.collapsed().contains("serve 50\n"));
    }

    #[test]
    fn sites_accumulate_and_render() {
        let mut p = Profiler::new();
        p.record_site("serve", 3, 0, 1);
        p.record_site("serve", 3, 1, 0);
        p.record_site("serve", 3, 1, 0);
        let sites = p.site_stats();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].1, SiteStats { hits: 2, misses: 1 });
        let report = p.report();
        assert!(report.contains("66.7%"), "{report}");
    }

    #[test]
    fn unbalanced_ret_is_harmless() {
        let mut p = Profiler::new();
        p.on_ret(10); // nothing on the stack: ignore
        assert_eq!(p.total_ops(), 0);
        p.on_call(10, "f");
        p.on_ret(12);
        assert_eq!(p.total_ops(), 2);
    }
}
