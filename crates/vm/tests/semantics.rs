//! Interpreter semantics suite: arithmetic edges, traps, aliasing,
//! suspension, linking corner cases. Guest programs are written in
//! Popcorn for readability; the properties under test are the VM's.

use popcorn::Interface;
use vm::{LinkMode, Outcome, Process, Trap, Value};

fn boot(src: &str) -> Process {
    let m = popcorn::compile(src, "t", "v1", &Interface::new()).expect("compiles");
    let mut p = Process::new(LinkMode::Updateable);
    p.load_module(&m).expect("links");
    p
}

fn run1(src: &str, entry: &str, arg: i64) -> Result<Value, Trap> {
    boot(src).call(entry, vec![Value::Int(arg)])
}

// ----------------------------- arithmetic -----------------------------

#[test]
fn integer_arithmetic_wraps() {
    let src = "fun f(x: int): int { return x + 1; }";
    assert_eq!(run1(src, "f", i64::MAX).unwrap(), Value::Int(i64::MIN));
    let src = "fun f(x: int): int { return x * 2; }";
    assert_eq!(run1(src, "f", i64::MAX).unwrap(), Value::Int(-2));
    let src = "fun f(x: int): int { return -x; }";
    assert_eq!(run1(src, "f", i64::MIN).unwrap(), Value::Int(i64::MIN));
}

#[test]
fn division_and_remainder_signs() {
    let src = "fun f(x: int): int { return x / 3; }";
    assert_eq!(
        run1(src, "f", -7).unwrap(),
        Value::Int(-2),
        "trunc toward zero"
    );
    let src = "fun f(x: int): int { return x % 3; }";
    assert_eq!(run1(src, "f", -7).unwrap(), Value::Int(-1));
    let src = "fun f(x: int): int { return 1 % x; }";
    assert_eq!(run1(src, "f", 0).unwrap_err(), Trap::DivByZero);
}

// ------------------------------- strings -------------------------------

#[test]
fn string_ops_edges() {
    let p = |src: &str, s: &str| boot(src).call("f", vec![Value::str(s)]).unwrap();
    assert_eq!(
        p("fun f(s: string): int { return len(s); }", ""),
        Value::Int(0)
    );
    assert_eq!(
        p(
            "fun f(s: string): string { return substr(s, -5, 100); }",
            "abc"
        ),
        Value::str("abc"),
        "substr clamps"
    );
    assert_eq!(
        p(
            "fun f(s: string): string { return substr(s, 1, 0); }",
            "abc"
        ),
        Value::str("")
    );
    assert_eq!(
        p("fun f(s: string): int { return find(s, \"\"); }", "abc"),
        Value::Int(0)
    );
    assert_eq!(
        p("fun f(s: string): int { return find(s, \"zz\"); }", "abc"),
        Value::Int(-1)
    );
    assert_eq!(
        p("fun f(s: string): int { return atoi(s); }", "  42abc"),
        Value::Int(42)
    );
    assert_eq!(
        p("fun f(s: string): int { return atoi(s); }", "-"),
        Value::Int(0)
    );
}

#[test]
fn char_at_bounds_trap() {
    let src = "fun f(x: int): int { return char_at(\"ab\", x); }";
    assert_eq!(run1(src, "f", 1).unwrap(), Value::Int(i64::from(b'b')));
    assert_eq!(
        run1(src, "f", 2).unwrap_err(),
        Trap::IndexOutOfBounds { index: 2, len: 2 }
    );
    assert_eq!(
        run1(src, "f", -1).unwrap_err(),
        Trap::IndexOutOfBounds { index: -1, len: 2 }
    );
}

#[test]
fn utf8_substr_stays_on_boundaries() {
    // Slicing through a multi-byte char must not panic; it clamps to the
    // previous boundary.
    let mut p = boot("fun f(s: string): string { return substr(s, 0, 2); }");
    let out = p.call("f", vec![Value::str("aé")]).unwrap();
    assert_eq!(out, Value::str("a"));
}

// ------------------------------- arrays -------------------------------

#[test]
fn array_bounds_traps() {
    let src = r#"
        fun f(i: int): int {
            var a: [int] = [10, 20];
            return a[i];
        }
    "#;
    assert_eq!(run1(src, "f", 1).unwrap(), Value::Int(20));
    assert_eq!(
        run1(src, "f", 2).unwrap_err(),
        Trap::IndexOutOfBounds { index: 2, len: 2 }
    );
    assert_eq!(
        run1(src, "f", -1).unwrap_err(),
        Trap::IndexOutOfBounds { index: -1, len: 2 }
    );
}

#[test]
fn arrays_and_records_alias() {
    // C-like reference semantics: two variables naming the same record
    // observe each other's writes.
    let src = r#"
        struct box { v: int }
        fun f(x: int): int {
            var a: box = box { v: x };
            var b: box = a;
            b.v = b.v + 1;
            var xs: [box] = [a];
            xs[0].v = xs[0].v + 10;
            return a.v;
        }
    "#;
    assert_eq!(run1(src, "f", 1).unwrap(), Value::Int(12));
}

#[test]
fn fresh_defaults_per_call_do_not_alias() {
    // Each call's array-typed local must be a fresh array, not a shared
    // default.
    let src = r#"
        fun f(x: int): int {
            var a: [int] = new [int];
            push(a, x);
            return len(a);
        }
    "#;
    let mut p = boot(src);
    assert_eq!(p.call("f", vec![Value::Int(1)]).unwrap(), Value::Int(1));
    assert_eq!(
        p.call("f", vec![Value::Int(1)]).unwrap(),
        Value::Int(1),
        "no leak across calls"
    );
}

// ----------------------------- suspension -----------------------------

#[test]
fn suspension_preserves_locals_and_operands() {
    let src = r#"
        fun f(x: int): int {
            var acc: int = x * 10;
            update;
            return acc + x;
        }
    "#;
    let mut p = boot(src);
    p.request_update(true);
    assert_eq!(p.run("f", vec![Value::Int(3)]).unwrap(), Outcome::Suspended);
    p.request_update(false);
    assert_eq!(p.resume().unwrap(), Outcome::Done(Value::Int(33)));
}

#[test]
fn nested_suspension_reports_full_stack() {
    let src = r#"
        fun inner(): int { update; return 1; }
        fun outer(): int { return inner() + 1; }
    "#;
    let mut p = boot(src);
    p.request_update(true);
    assert_eq!(p.run("outer", vec![]).unwrap(), Outcome::Suspended);
    assert_eq!(
        p.suspended_stack(),
        vec!["outer".to_string(), "inner".to_string()]
    );
    p.request_update(false);
    assert_eq!(p.resume().unwrap(), Outcome::Done(Value::Int(2)));
}

#[test]
fn calls_during_suspension_use_a_separate_stack() {
    let src = r#"
        global g: int = 0;
        fun probe(): int { return g; }
        fun f(): int { g = 7; update; return g; }
    "#;
    let mut p = boot(src);
    p.request_update(true);
    assert_eq!(p.run("f", vec![]).unwrap(), Outcome::Suspended);
    // A helper call while suspended (as transformers do) works fine.
    assert_eq!(p.call("probe", vec![]).unwrap(), Value::Int(7));
    p.request_update(false);
    assert_eq!(p.resume().unwrap(), Outcome::Done(Value::Int(7)));
}

#[test]
fn discard_suspended_allows_fresh_runs() {
    let mut p = boot("fun f(): int { update; return 1; }");
    p.request_update(true);
    assert_eq!(p.run("f", vec![]).unwrap(), Outcome::Suspended);
    p.discard_suspended();
    p.request_update(false);
    assert_eq!(p.run("f", vec![]).unwrap(), Outcome::Done(Value::Int(1)));
}

// ------------------------------ linking ------------------------------

#[test]
fn entry_point_errors() {
    let mut p = boot("fun f(x: int): int { return x; }");
    assert_eq!(
        p.call("ghost", vec![]).unwrap_err(),
        Trap::NoSuchFunction("ghost".to_string())
    );
    assert_eq!(
        p.call("f", vec![]).unwrap_err(),
        Trap::BadEntryArity {
            expected: 1,
            got: 0
        }
    );
}

#[test]
fn duplicate_initial_load_is_rejected() {
    let m = popcorn::compile("fun f(): int { return 1; }", "t", "v1", &Interface::new()).unwrap();
    let mut p = Process::new(LinkMode::Updateable);
    p.load_module(&m).unwrap();
    let e = p.load_module(&m).unwrap_err();
    assert!(matches!(e, vm::LinkError::Duplicate(_)), "{e}");
}

#[test]
fn conflicting_type_definition_is_rejected() {
    let m1 = popcorn::compile(
        "struct s { v: int } fun f(x: s): int { return x.v; }",
        "a",
        "v1",
        &Interface::new(),
    )
    .unwrap();
    let m2 = popcorn::compile(
        "struct s { v: bool } fun g(x: s): bool { return x.v; }",
        "b",
        "v1",
        &Interface::new(),
    )
    .unwrap();
    let mut p = Process::new(LinkMode::Updateable);
    p.load_module(&m1).unwrap();
    let e = p.load_module(&m2).unwrap_err();
    assert!(matches!(e, vm::LinkError::TypeConflict(_)), "{e}");
}

#[test]
fn identical_type_definition_is_shared() {
    let m1 = popcorn::compile(
        "struct s { v: int } fun f(x: s): int { return x.v; }",
        "a",
        "v1",
        &Interface::new(),
    )
    .unwrap();
    let m2 = popcorn::compile(
        "struct s { v: int } fun g(): s { return s { v: 3 }; }",
        "b",
        "v1",
        &Interface::new(),
    )
    .unwrap();
    let mut p = Process::new(LinkMode::Updateable);
    p.load_module(&m1).unwrap();
    p.load_module(&m2).unwrap();
    // Records built by module b flow into module a's functions.
    let v = p.call("g", vec![]).unwrap();
    assert_eq!(p.call("f", vec![v]).unwrap(), Value::Int(3));
}

#[test]
fn init_trap_is_reported_as_link_error() {
    let m = popcorn::compile(
        "global g: int = 1 / 0; fun f(): int { return g; }",
        "t",
        "v1",
        &Interface::new(),
    )
    .unwrap();
    let mut p = Process::new(LinkMode::Static);
    let e = p.load_module(&m).unwrap_err();
    assert!(
        matches!(&e, vm::LinkError::InitTrap { name, trap: Trap::DivByZero } if name == "g"),
        "{e}"
    );
}

#[test]
fn stats_accumulate_across_calls() {
    // `calls` counts guest-to-guest calls; host-driven entries are not
    // guest calls.
    let mut p = boot(
        "fun helper(x: int): int { return x + 1; }\
         fun f(x: int): int { return helper(x); }",
    );
    p.call("f", vec![Value::Int(1)]).unwrap();
    let after_one = p.stats.instrs;
    assert_eq!(p.stats.calls, 1);
    p.call("f", vec![Value::Int(1)]).unwrap();
    assert_eq!(p.stats.instrs, after_one * 2);
    assert_eq!(p.stats.calls, 2);
}

#[test]
fn heap_size_tracks_global_state() {
    let src = r#"
        global xs: [string] = new [string];
        fun grow(): int { push(xs, "0123456789"); return len(xs); }
    "#;
    let mut p = boot(src);
    let h0 = p.heap_size();
    p.call("grow", vec![]).unwrap();
    let h1 = p.heap_size();
    assert!(h1 > h0, "{h0} -> {h1}");
    p.call("grow", vec![]).unwrap();
    assert!(p.heap_size() > h1);
}

#[test]
fn uninitialised_function_pointer_traps_not_panics() {
    let src = r#"
        fun f(): int {
            var g: fn(): int = &f;
            var h: fn(): int = g;
            return 0;
        }
        fun bad(): int {
            var g: fn(): int = &f;
            if (false) { return g(); }
            var h: fn(): int = h2();
            return h();
        }
        fun h2(): fn(): int {
            var x: fn(): int = &f;
            return x;
        }
    "#;
    // Exercise the declared-but-defaulted path through raw tal instead:
    // a fn-typed local read before assignment.
    let mut b = tal::ModuleBuilder::new("m", "v1");
    b.function("g", tal::FnSig::new(vec![], tal::Ty::Int), |f| {
        let l = f.local(tal::Ty::func(vec![], tal::Ty::Int));
        f.emit(tal::Instr::LoadLocal(l));
        f.emit(tal::Instr::CallIndirect);
        f.emit(tal::Instr::Ret);
    });
    let mut p = Process::new(LinkMode::Static);
    p.load_module(&b.finish()).unwrap();
    assert_eq!(p.call("g", vec![]).unwrap_err(), Trap::UnresolvedFn);
    // And the popcorn source above still compiles and runs.
    let mut p = boot(src);
    assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(0));
}

#[test]
fn fuel_limits_runaway_loops() {
    let mut p = boot("fun spin(): int { while (true) { } return 0; }");
    p.set_fuel(Some(10_000));
    assert_eq!(p.call("spin", vec![]).unwrap_err(), Trap::OutOfFuel);
    // Refuelling allows further work.
    p.set_fuel(Some(1_000_000));
    assert_eq!(
        boot("fun f(): int { return 1; }")
            .call("f", vec![])
            .unwrap(),
        Value::Int(1)
    );
    let mut p2 = boot("fun f(): int { return 1; }");
    p2.set_fuel(Some(1_000));
    assert_eq!(p2.call("f", vec![]).unwrap(), Value::Int(1));
    // Removing the limit restores unlimited execution.
    p2.set_fuel(None);
    assert_eq!(p2.call("f", vec![]).unwrap(), Value::Int(1));
}

// --------------------------- inline caches ---------------------------
//
// Updateable calls resolve through per-site inline caches validated
// against the process bind generation. These tests pin the contract:
// warm sites pay no table traffic, and *any* rebind — patch, deletion,
// rollback — is observed by the very next call through every site,
// including frames suspended at an update point across the change.

fn patch(p: &mut Process, src: &str) {
    let m = popcorn::compile(src, "patch", "v2", &Interface::new()).expect("patch compiles");
    let planned = p
        .link_functions(&m, &vm::LinkOverrides::default())
        .expect("patch links");
    for (name, id) in planned {
        p.bind_function(&name, id);
    }
}

const WORK: &str = r#"
    fun helper(x: int): int { return x + 1; }
    fun work(x: int): int { return helper(helper(x)); }
"#;

#[test]
fn warm_call_sites_hit_the_inline_cache() {
    let mut p = boot(WORK);
    assert_eq!(p.call("work", vec![Value::Int(0)]).unwrap(), Value::Int(2));
    let first_misses = p.stats.ic_misses;
    assert!(first_misses >= 1, "first run must fill the caches");
    let first_hits = p.stats.ic_hits;
    assert_eq!(p.call("work", vec![Value::Int(5)]).unwrap(), Value::Int(7));
    assert_eq!(p.stats.ic_misses, first_misses, "warm run re-resolved");
    assert!(p.stats.ic_hits > first_hits, "warm run did not hit");
    // Every slot call is accounted as exactly one hit or one miss.
    assert_eq!(p.stats.slot_calls, p.stats.ic_hits + p.stats.ic_misses);
}

#[test]
fn rebinding_invalidates_every_warm_cache() {
    let mut p = boot(WORK);
    assert_eq!(p.call("work", vec![Value::Int(0)]).unwrap(), Value::Int(2));
    let misses = p.stats.ic_misses;
    patch(&mut p, "fun helper(x: int): int { return x + 10; }");
    // The next call through the (warm) sites re-resolves and sees v2.
    assert_eq!(p.call("work", vec![Value::Int(0)]).unwrap(), Value::Int(20));
    assert!(p.stats.ic_misses > misses, "rebind was not observed");
    // And the refilled caches hit again afterwards.
    let misses = p.stats.ic_misses;
    assert_eq!(p.call("work", vec![Value::Int(0)]).unwrap(), Value::Int(20));
    assert_eq!(p.stats.ic_misses, misses);
}

#[test]
fn unbinding_traps_even_through_a_warm_cache() {
    let mut p = boot(WORK);
    assert_eq!(p.call("work", vec![Value::Int(0)]).unwrap(), Value::Int(2));
    p.unbind_function("helper");
    assert_eq!(
        p.call("work", vec![Value::Int(0)]).unwrap_err(),
        Trap::UnboundSlot("helper".to_string())
    );
}

#[test]
fn suspended_frames_observe_patch_and_rollback() {
    let src = r#"
        fun helper(): int { return 1; }
        fun work(): int {
            var a: int = helper();
            update;
            return a * 100 + helper();
        }
    "#;
    let mut p = boot(src);
    // Warm every cache under v1.
    assert_eq!(
        p.run("work", vec![]).unwrap(),
        Outcome::Done(Value::Int(101))
    );
    let snap = p.snapshot();

    // Patch while suspended: the frame's first `helper` call happened
    // under v1 (a = 1); the call after the update point must see v2.
    p.request_update(true);
    assert_eq!(p.run("work", vec![]).unwrap(), Outcome::Suspended);
    p.request_update(false);
    patch(&mut p, "fun helper(): int { return 2; }");
    assert_eq!(p.resume().unwrap(), Outcome::Done(Value::Int(102)));

    // Roll back while suspended: a = 2 came from v2 before the update
    // point; the restore re-binds v1, and the resumed call must see it
    // even though every cache is warm with v2.
    p.request_update(true);
    assert_eq!(p.run("work", vec![]).unwrap(), Outcome::Suspended);
    p.request_update(false);
    p.restore(snap);
    assert_eq!(p.resume().unwrap(), Outcome::Done(Value::Int(201)));
}

#[test]
fn disabling_inline_caching_falls_back_to_table_lookups() {
    let mut p = boot(WORK);
    p.set_inline_caching(false);
    assert_eq!(p.call("work", vec![Value::Int(0)]).unwrap(), Value::Int(2));
    assert_eq!(p.call("work", vec![Value::Int(0)]).unwrap(), Value::Int(2));
    assert_eq!(p.stats.ic_hits + p.stats.ic_misses, 0);
    assert!(
        p.stats.slot_calls >= 4,
        "slot calls still go through the GIT"
    );
    // Re-enabling resumes caching (and still resolves correctly).
    p.set_inline_caching(true);
    assert_eq!(p.call("work", vec![Value::Int(0)]).unwrap(), Value::Int(2));
    assert!(p.stats.ic_misses >= 1);
}
