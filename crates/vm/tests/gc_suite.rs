//! Code-store garbage collection suite: every root class, and the
//! documented snapshot caveat.

use popcorn::Interface;
use vm::{LinkMode, LinkOverrides, Outcome, Process, Value};

fn boot(src: &str) -> Process {
    let m = popcorn::compile(src, "t", "v1", &Interface::new()).unwrap();
    let mut p = Process::new(LinkMode::Updateable);
    p.load_module(&m).unwrap();
    p
}

/// Rebinds `name` to a new implementation compiled from `src` (raw VM
/// path, no dsu-core).
fn rebind(p: &mut Process, src: &str) {
    let m = popcorn::compile(src, "patch", "vN", &Interface::new()).unwrap();
    let planned = p.link_functions(&m, &LinkOverrides::default()).unwrap();
    for (name, id) in planned {
        p.bind_function(&name, id);
    }
}

#[test]
fn bound_and_slot_roots_are_kept() {
    let mut p = boot("fun f(): int { return 1; }");
    rebind(&mut p, "fun f(): int { return 2; }");
    let (collected, retained) = p.collect_code();
    assert_eq!(collected, 1, "old f");
    assert_eq!(retained, 1);
    assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(2));
}

#[test]
fn suspended_frames_pin_their_code_and_callees() {
    let mut p = boot(
        r#"
        fun helper(): int { return 1; }
        fun work(): int {
            update;
            return helper();
        }
        "#,
    );
    p.request_update(true);
    assert_eq!(p.run("work", vec![]).unwrap(), Outcome::Suspended);
    // Replace both functions while the old `work` frame is live.
    rebind(
        &mut p,
        "fun helper(): int { return 2; } fun work(): int { update; return helper(); }",
    );
    let (collected, _) = p.collect_code();
    // Old `work` is pinned by the live frame. Old `helper` is unreachable
    // (the old frame calls helper *through the slot*, which now targets
    // the new helper — exactly the paper's semantics) and is collected.
    assert_eq!(collected, 1, "only the old helper");
    p.request_update(false);
    assert_eq!(p.resume().unwrap(), Outcome::Done(Value::Int(2)));
    // After the frame finishes, the old `work` becomes collectable too.
    let (collected, _) = p.collect_code();
    assert_eq!(collected, 1);
}

#[test]
fn function_values_in_heap_pin_targets() {
    // Under updateable linking, stored function values hold slots (the
    // current binding is the root); under static linking they hold direct
    // ids. Exercise the static path explicitly.
    let src = r#"
        global h: fn(): int = &one;
        fun one(): int { return 1; }
        fun call_h(): int { var g: fn(): int = h; return g(); }
    "#;
    let m = popcorn::compile(src, "t", "v1", &Interface::new()).unwrap();
    let mut p = Process::new(LinkMode::Static);
    p.load_module(&m).unwrap();
    let (collected, _) = p.collect_code();
    assert_eq!(collected, 0);
    assert_eq!(p.call("call_h", vec![]).unwrap(), Value::Int(1));
}

#[test]
fn collection_is_idempotent_and_stable_under_load() {
    let mut p = boot("fun f(x: int): int { return x; }");
    for i in 0..10 {
        rebind(&mut p, &format!("fun f(x: int): int {{ return x + {i}; }}"));
    }
    assert_eq!(p.code_store_len(), 11);
    let (c1, _) = p.collect_code();
    assert_eq!(c1, 10);
    let (c2, _) = p.collect_code();
    assert_eq!(c2, 0);
    assert_eq!(p.call("f", vec![Value::Int(0)]).unwrap(), Value::Int(9));
}

#[test]
fn snapshot_restored_after_collection_traps_cleanly() {
    // The documented caveat: restoring a pre-collection snapshot can
    // rebind collected code; calls then trap (never UB, never panic).
    let mut p = boot("fun f(): int { return 1; }");
    let snap = p.snapshot();
    rebind(&mut p, "fun f(): int { return 2; }");
    p.collect_code();
    p.restore(snap);
    let e = p.call("f", vec![]).unwrap_err();
    assert!(
        matches!(e, vm::Trap::Host(ref m) if m.contains("garbage-collected")),
        "{e:?}"
    );
}
