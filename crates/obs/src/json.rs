//! Minimal JSON emission and parsing helpers (the crate is
//! dependency-free; the exported shapes are simple enough that
//! hand-rolled escaping and a flat-object reader beat pulling a
//! serialisation framework into every layer of the system).

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float the way JSON expects (finite; NaN/inf become null).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// One field value of a flat JSON object (journal events nest nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scalar {
    Null,
    Bool(bool),
    /// Integer — the only numeric shape the journal emits (`at_ns`,
    /// `dur_ns`, ids). Wide enough for `Duration::as_nanos` values.
    Int(i128),
    Str(String),
}

impl Scalar {
    /// The integer value, if this scalar is one.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Scalar::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this scalar is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat JSON object — `{"key": scalar, ...}` with string,
/// integer, boolean and null values only — into its fields in source
/// order. The inverse of the emission side of this module, for reading
/// back write-ahead journal lines.
///
/// # Errors
///
/// Returns a description of the first syntax error (nested values are a
/// syntax error here: the journal never writes them).
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {pos}", b as char))
        }
    }

    fn string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn scalar(bytes: &[u8], pos: &mut usize) -> Result<Scalar, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'"') => Ok(Scalar::Str(string(bytes, pos)?)),
            Some(b't') if bytes[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Scalar::Bool(true))
            }
            Some(b'f') if bytes[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Scalar::Bool(false))
            }
            Some(b'n') if bytes[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Scalar::Null)
            }
            Some(&c) if c == b'-' || c.is_ascii_digit() => {
                let start = *pos;
                if c == b'-' {
                    *pos += 1;
                }
                while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
                    *pos += 1;
                }
                let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits");
                text.parse::<i128>()
                    .map(Scalar::Int)
                    .map_err(|e| format!("bad number `{text}`: {e}"))
            }
            _ => Err(format!("expected a scalar at byte {pos}")),
        }
    }

    expect(bytes, &mut pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, &mut pos);
    if bytes.get(pos) == Some(&b'}') {
        pos += 1;
    } else {
        loop {
            let key = string(bytes, &mut pos)?;
            expect(bytes, &mut pos, b':')?;
            fields.push((key, scalar(bytes, &mut pos)?));
            skip_ws(bytes, &mut pos);
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {
                    pos += 1;
                    break;
                }
                _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
            }
        }
    }
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn non_finite_numbers_are_null() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn flat_objects_parse_back() {
        let fields = parse_flat_object(
            "{\"seq\":3,\"from\":\"v1\",\"ok\":true,\"none\":null,\"neg\":-7,\"esc\":\"a\\\"b\\nc\"}",
        )
        .unwrap();
        assert_eq!(fields[0], ("seq".to_string(), Scalar::Int(3)));
        assert_eq!(
            fields[1],
            ("from".to_string(), Scalar::Str("v1".to_string()))
        );
        assert_eq!(fields[2], ("ok".to_string(), Scalar::Bool(true)));
        assert_eq!(fields[3], ("none".to_string(), Scalar::Null));
        assert_eq!(fields[4], ("neg".to_string(), Scalar::Int(-7)));
        assert_eq!(
            fields[5],
            ("esc".to_string(), Scalar::Str("a\"b\nc".to_string()))
        );
        assert!(parse_flat_object("{}").unwrap().is_empty());
    }

    #[test]
    fn flat_object_errors() {
        for bad in ["", "{", "{\"a\":}", "{\"a\":1} extra", "[1]", "{\"a\":{}}"] {
            assert!(parse_flat_object(bad).is_err(), "{bad}");
        }
    }
}
