//! Minimal JSON emission helpers (the crate is dependency-free; the
//! exported shapes are simple enough that hand-rolled escaping beats
//! pulling a serialisation framework into every layer of the system).

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float the way JSON expects (finite; NaN/inf become null).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn non_finite_numbers_are_null() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
