//! # dsu-obs — unified telemetry for the DSU runtime
//!
//! The paper's whole argument rests on *measuring* the cost of
//! updateability: dispatch overhead, per-phase patch-application pauses,
//! served-traffic disruption. This crate is the substrate those
//! measurements flow through, shared by every layer of the system:
//!
//! * [`Journal`] — a structured **event journal**: every patch traverses
//!   an explicit lifecycle (`enqueued → gate-wait → verify → compat →
//!   link → bind → init → transform → committed/aborted`) emitted as
//!   timestamped, worker-tagged [`Event`]s with JSONL export;
//! * [`Registry`] — a **metrics registry** of atomic [`Counter`]s,
//!   [`Gauge`]s and bucketed [`Histogram`]s with Prometheus-style text
//!   exposition and a JSON snapshot;
//! * [`fleet`] — **fleet aggregation**: merge per-worker registries into
//!   one exposition and reconstruct rollout timelines from the journal;
//! * [`trace`] — **causal tracing**: a lock-cheap, sampling span
//!   collector ([`Tracer`]) joining request lifecycles, update pauses
//!   and rollouts under shared trace ids, with a Chrome-trace-event
//!   (Perfetto-loadable) exporter;
//! * [`attribution`] — the **latency-attribution analyzer**: joins
//!   request spans with overlapping update spans into a per-update
//!   [`StallReport`] (requests delayed, per-phase attributed time,
//!   attributed vs. intrinsic percentiles).
//!
//! Everything is dependency-free, lock-light (counters are relaxed
//! atomics; the journal and span ring take one short mutex per record)
//! and cheap to clone: handles are `Arc`s, so a worker thread, its
//! updater and a scraping coordinator can all share the same
//! instruments.

pub mod attribution;
pub mod fleet;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod trace;

pub use attribution::{stall_report, RequestStall, StallReport, UpdateStall};
pub use fleet::{aggregate_json, aggregate_text, render_timeline, RolloutRow};
pub use journal::{Event, Journal, Stage};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use trace::{to_chrome_trace, validate_spans, Span, SpanKind, Tracer};
