//! # dsu-obs — unified telemetry for the DSU runtime
//!
//! The paper's whole argument rests on *measuring* the cost of
//! updateability: dispatch overhead, per-phase patch-application pauses,
//! served-traffic disruption. This crate is the substrate those
//! measurements flow through, shared by every layer of the system:
//!
//! * [`Journal`] — a structured **event journal**: every patch traverses
//!   an explicit lifecycle (`enqueued → gate-wait → verify → compat →
//!   link → bind → init → transform → committed/aborted`) emitted as
//!   timestamped, worker-tagged [`Event`]s with JSONL export;
//! * [`Registry`] — a **metrics registry** of atomic [`Counter`]s,
//!   [`Gauge`]s and bucketed [`Histogram`]s with Prometheus-style text
//!   exposition and a JSON snapshot;
//! * [`fleet`] — **fleet aggregation**: merge per-worker registries into
//!   one exposition and reconstruct rollout timelines from the journal.
//!
//! Everything is dependency-free, lock-light (counters are relaxed
//! atomics; the journal takes one short mutex per event) and cheap to
//! clone: handles are `Arc`s, so a worker thread, its updater and a
//! scraping coordinator can all share the same instruments.

pub mod fleet;
pub mod journal;
pub mod json;
pub mod metrics;

pub use fleet::{aggregate_json, aggregate_text, RolloutRow};
pub use journal::{Event, Journal, Stage};
pub use metrics::{Counter, Gauge, Histogram, Registry};
