//! Latency attribution: join request spans with overlapping update
//! spans into a per-update **stall report**.
//!
//! The AMPED worker is single-threaded: while an update pause runs, the
//! request the guest was serving is stalled and every other admitted
//! request queues behind it. The analyzer models exactly that —
//! **head-of-line exclusive attribution**:
//!
//! * for each update span, the *overlapping* request spans on the same
//!   worker are the delayed cohort;
//! * the cohort's **head** (earliest-started request — the one the guest
//!   was executing when the pause hit) is charged the pause: its
//!   attributed time is the sum of its overlaps with the update's phase
//!   child spans (`gate-wait`, `drain`, `verify`, …, `transform`);
//! * the rest of the cohort is counted as delayed but not double-charged
//!   — their queueing delay is a shadow of the same pause.
//!
//! Because update phase spans carry the same durations as
//! `PhaseTimings` and the journal, a pause that lands wholly inside its
//! head request reconciles *exactly*: attributed time == journal phase
//! sum. Phase time no request was executing under is reported as
//! `unattributed` (the pause hit an idle worker), keeping the
//! accounting total: attributed + unattributed == phase totals.

use std::collections::HashMap;
use std::time::Duration;

use crate::json;
use crate::trace::{Span, SpanKind};

/// One update's share of the stall accounting.
#[derive(Debug, Clone)]
pub struct UpdateStall {
    /// Update lifecycle id (journal cross-link).
    pub update: u64,
    /// Trace the update span belongs to (the rollout trace, when the
    /// coordinator propagated one).
    pub trace: u64,
    /// Worker the update applied on.
    pub worker: Option<usize>,
    /// Whether this was a reverse (rollback) update.
    pub rollback: bool,
    /// Version transition (`"v1->v2"`), from the span detail.
    pub detail: Option<String>,
    /// Whole pause: the update span's own duration.
    pub pause: Duration,
    /// Sum of the update's phase child spans (== journal phase sums).
    pub phase_total: Duration,
    /// Requests whose spans overlap the pause on the same worker.
    pub requests_delayed: usize,
    /// Pause time charged to the head request, per phase name.
    pub per_phase: Vec<(&'static str, Duration)>,
    /// Total pause time charged to the head request.
    pub attributed: Duration,
    /// Phase time no request was running under (idle-worker pause).
    pub unattributed: Duration,
}

/// One delayed request's view of the same accounting.
#[derive(Debug, Clone)]
pub struct RequestStall {
    /// Request id.
    pub request: u64,
    /// Worker that served it.
    pub worker: Option<usize>,
    /// End-to-end request latency (its span's duration).
    pub total: Duration,
    /// Update-pause time attributed to this request.
    pub attributed: Duration,
    /// Latency net of attributed pause time.
    pub intrinsic: Duration,
    /// Update spans this request's span overlaps (for the
    /// exactly-one-pause invariant under non-overlapping rollouts).
    pub overlapping_updates: usize,
}

/// The joined stall report for one span capture.
#[derive(Debug, Clone, Default)]
pub struct StallReport {
    /// Per-update rows, in start order.
    pub updates: Vec<UpdateStall>,
    /// Per-request rows for every request that overlapped a pause.
    pub requests: Vec<RequestStall>,
    /// Request spans seen in the capture.
    pub requests_seen: usize,
    /// Distinct requests overlapping at least one update pause.
    pub requests_delayed: usize,
    /// Total pause time attributed across all requests.
    pub attributed_total: Duration,
    /// Total phase time that hit idle workers.
    pub unattributed_total: Duration,
    /// p50 of attributed pause time over all sampled requests.
    pub p50_attributed: Duration,
    /// p99 of attributed pause time over all sampled requests.
    pub p99_attributed: Duration,
    /// p50 of intrinsic (pause-free) latency over all sampled requests.
    pub p50_intrinsic: Duration,
    /// p99 of intrinsic latency over all sampled requests.
    pub p99_intrinsic: Duration,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Builds the stall report from a span capture (as returned by
/// `Tracer::spans`). Only `Request`, `Update` and `UpdatePhase` spans
/// participate; anything else is ignored.
pub fn stall_report(spans: &[Span]) -> StallReport {
    let requests: Vec<&Span> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Request)
        .collect();
    let updates: Vec<&Span> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Update)
        .collect();
    let mut phases: HashMap<u64, Vec<&Span>> = HashMap::new();
    for s in spans.iter().filter(|s| s.kind == SpanKind::UpdatePhase) {
        if let Some(p) = s.parent {
            phases.entry(p).or_default().push(s);
        }
    }

    // request span id -> (attributed, overlapping update count)
    let mut per_request: HashMap<u64, (Duration, usize)> = HashMap::new();
    let mut rows = Vec::with_capacity(updates.len());

    for u in &updates {
        let cohort: Vec<&Span> = requests
            .iter()
            .filter(|r| r.worker == u.worker && r.overlap(u) > Duration::ZERO)
            .copied()
            .collect();
        for r in &cohort {
            per_request.entry(r.id).or_default().1 += 1;
        }
        // Head of line: the earliest-started overlapping request is the
        // one the guest was executing when the pause hit.
        let head: Option<&Span> = cohort.iter().min_by_key(|r| (r.start, r.id)).copied();

        let children = phases.get(&u.id).map(Vec::as_slice).unwrap_or(&[]);
        let phase_total: Duration = children.iter().map(|c| c.dur).sum();
        let mut per_phase: Vec<(&'static str, Duration)> = Vec::with_capacity(children.len());
        let mut attributed = Duration::ZERO;
        for c in children {
            let share = head.map(|h| h.overlap(c)).unwrap_or_default();
            attributed += share;
            match per_phase.iter_mut().find(|(n, _)| *n == c.name) {
                Some((_, d)) => *d += share,
                None => per_phase.push((c.name, share)),
            }
        }
        if let Some(h) = head {
            per_request.entry(h.id).or_default().0 += attributed;
        }

        rows.push(UpdateStall {
            update: u.update.unwrap_or_default(),
            trace: u.trace,
            worker: u.worker,
            rollback: u.name == "rollback",
            detail: u.detail.clone(),
            pause: u.dur,
            phase_total,
            requests_delayed: cohort.len(),
            per_phase,
            attributed,
            unattributed: phase_total.saturating_sub(attributed),
        });
    }
    rows.sort_by_key(|r| (r.worker, r.update));

    let mut request_rows: Vec<RequestStall> = requests
        .iter()
        .filter_map(|r| {
            let (attributed, overlapping) = *per_request.get(&r.id)?;
            Some(RequestStall {
                request: r.request.unwrap_or(r.id),
                worker: r.worker,
                total: r.dur,
                attributed,
                intrinsic: r.dur.saturating_sub(attributed),
                overlapping_updates: overlapping,
            })
        })
        .collect();
    request_rows.sort_by_key(|r| (r.worker, r.request));

    // Percentiles over *all* sampled requests, delayed or not: the
    // attributed distribution is mostly zeros — that is the point.
    let mut attributed_all: Vec<Duration> = requests
        .iter()
        .map(|r| per_request.get(&r.id).map(|(a, _)| *a).unwrap_or_default())
        .collect();
    let mut intrinsic_all: Vec<Duration> = requests
        .iter()
        .map(|r| {
            let a = per_request.get(&r.id).map(|(a, _)| *a).unwrap_or_default();
            r.dur.saturating_sub(a)
        })
        .collect();
    attributed_all.sort_unstable();
    intrinsic_all.sort_unstable();

    StallReport {
        requests_seen: requests.len(),
        requests_delayed: request_rows.len(),
        attributed_total: rows.iter().map(|r| r.attributed).sum(),
        unattributed_total: rows.iter().map(|r| r.unattributed).sum(),
        p50_attributed: percentile(&attributed_all, 50.0),
        p99_attributed: percentile(&attributed_all, 99.0),
        p50_intrinsic: percentile(&intrinsic_all, 50.0),
        p99_intrinsic: percentile(&intrinsic_all, 99.0),
        updates: rows,
        requests: request_rows,
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

impl StallReport {
    /// One JSON object (hand-rolled, like the rest of the crate).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"requests_seen\":{},\"requests_delayed\":{},\
             \"attributed_total_ms\":{},\"unattributed_total_ms\":{},\
             \"p50_attributed_ms\":{},\"p99_attributed_ms\":{},\
             \"p50_intrinsic_ms\":{},\"p99_intrinsic_ms\":{},\"updates\":[",
            self.requests_seen,
            self.requests_delayed,
            json::num(ms(self.attributed_total)),
            json::num(ms(self.unattributed_total)),
            json::num(ms(self.p50_attributed)),
            json::num(ms(self.p99_attributed)),
            json::num(ms(self.p50_intrinsic)),
            json::num(ms(self.p99_intrinsic)),
        );
        for (i, u) in self.updates.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"update\":{},\"trace\":{},\"rollback\":{},\"pause_ms\":{},\
                 \"phase_total_ms\":{},\"requests_delayed\":{},\"attributed_ms\":{},\
                 \"unattributed_ms\":{}",
                u.update,
                u.trace,
                u.rollback,
                json::num(ms(u.pause)),
                json::num(ms(u.phase_total)),
                u.requests_delayed,
                json::num(ms(u.attributed)),
                json::num(ms(u.unattributed)),
            ));
            if let Some(w) = u.worker {
                s.push_str(&format!(",\"worker\":{w}"));
            }
            if let Some(d) = &u.detail {
                s.push_str(&format!(",\"transition\":\"{}\"", json::escape(d)));
            }
            s.push_str(",\"per_phase_ms\":{");
            for (j, (name, d)) in u.per_phase.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\":{}", json::escape(name), json::num(ms(*d))));
            }
            s.push_str("}}");
        }
        s.push_str("],\"requests\":[");
        for (i, r) in self.requests.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"request\":{},\"total_ms\":{},\"attributed_ms\":{},\
                 \"intrinsic_ms\":{},\"overlapping_updates\":{}",
                r.request,
                json::num(ms(r.total)),
                json::num(ms(r.attributed)),
                json::num(ms(r.intrinsic)),
                r.overlapping_updates,
            ));
            if let Some(w) = r.worker {
                s.push_str(&format!(",\"worker\":{w}"));
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Human-readable rendering (fixed-width table + summary lines).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "stall report: {} requests sampled, {} delayed by updates\n",
            self.requests_seen, self.requests_delayed
        ));
        out.push_str(&format!(
            "latency: p50 intrinsic {:.3}ms / attributed {:.3}ms; \
             p99 intrinsic {:.3}ms / attributed {:.3}ms\n",
            ms(self.p50_intrinsic),
            ms(self.p50_attributed),
            ms(self.p99_intrinsic),
            ms(self.p99_attributed),
        ));
        out.push_str(&format!(
            "{:<8} {:<8} {:<12} {:<10} {:>8} {:>12} {:>12}  per-phase (attributed ms)\n",
            "update", "worker", "transition", "kind", "delayed", "pause ms", "attrib ms"
        ));
        for u in &self.updates {
            let worker = u.worker.map_or("-".to_string(), |w| w.to_string());
            let mut phases = String::new();
            for (name, d) in &u.per_phase {
                if *d > Duration::ZERO {
                    if !phases.is_empty() {
                        phases.push(' ');
                    }
                    phases.push_str(&format!("{name}={:.3}", ms(*d)));
                }
            }
            out.push_str(&format!(
                "{:<8} {:<8} {:<12} {:<10} {:>8} {:>12.3} {:>12.3}  {}\n",
                u.update,
                worker,
                u.detail.as_deref().unwrap_or("-"),
                if u.rollback { "ROLLBACK" } else { "update" },
                u.requests_delayed,
                ms(u.pause),
                ms(u.attributed),
                phases,
            ));
        }
        out.push_str(&format!(
            "attributed total {:.3}ms, unattributed (idle-worker) {:.3}ms\n",
            ms(self.attributed_total),
            ms(self.unattributed_total)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanKind;

    fn mk(
        kind: SpanKind,
        id: u64,
        parent: Option<u64>,
        name: &'static str,
        worker: Option<usize>,
        start_us: u64,
        dur_us: u64,
    ) -> Span {
        Span {
            trace: 1,
            id,
            parent,
            kind,
            name,
            worker,
            start: Duration::from_micros(start_us),
            dur: Duration::from_micros(dur_us),
            update: if kind == SpanKind::Update {
                Some(id)
            } else {
                None
            },
            request: if kind == SpanKind::Request {
                Some(id)
            } else {
                None
            },
            detail: None,
        }
    }

    #[test]
    fn head_of_line_gets_the_pause_exactly_once() {
        let spans = vec![
            // Head request [0, 1000]; a queued one [50, 1100].
            mk(SpanKind::Request, 1, None, "request", Some(0), 0, 1000),
            mk(SpanKind::Request, 2, None, "request", Some(0), 50, 1050),
            // Update [100, 400] with two phases fully inside the head.
            mk(SpanKind::Update, 10, None, "update", Some(0), 100, 300),
            mk(
                SpanKind::UpdatePhase,
                11,
                Some(10),
                "drain",
                Some(0),
                100,
                200,
            ),
            mk(
                SpanKind::UpdatePhase,
                12,
                Some(10),
                "bind",
                Some(0),
                300,
                100,
            ),
        ];
        let rep = stall_report(&spans);
        assert_eq!(rep.requests_seen, 2);
        assert_eq!(rep.requests_delayed, 2);
        assert_eq!(rep.updates.len(), 1);
        let u = &rep.updates[0];
        assert_eq!(u.requests_delayed, 2);
        assert_eq!(u.attributed, Duration::from_micros(300));
        assert_eq!(u.phase_total, Duration::from_micros(300));
        assert_eq!(u.unattributed, Duration::ZERO);
        // Only the head is charged.
        let head = rep.requests.iter().find(|r| r.request == 1).unwrap();
        assert_eq!(head.attributed, Duration::from_micros(300));
        assert_eq!(head.intrinsic, Duration::from_micros(700));
        let queued = rep.requests.iter().find(|r| r.request == 2).unwrap();
        assert_eq!(queued.attributed, Duration::ZERO);
        assert_eq!(queued.overlapping_updates, 1);
        assert_eq!(rep.attributed_total, Duration::from_micros(300));
    }

    #[test]
    fn idle_worker_pause_is_unattributed() {
        let spans = vec![
            mk(SpanKind::Update, 10, None, "update", Some(1), 100, 300),
            mk(
                SpanKind::UpdatePhase,
                11,
                Some(10),
                "bind",
                Some(1),
                100,
                300,
            ),
            // Request on a different worker: no overlap charge.
            mk(SpanKind::Request, 1, None, "request", Some(0), 0, 1000),
        ];
        let rep = stall_report(&spans);
        assert_eq!(rep.requests_delayed, 0);
        assert_eq!(rep.updates[0].requests_delayed, 0);
        assert_eq!(rep.updates[0].attributed, Duration::ZERO);
        assert_eq!(rep.updates[0].unattributed, Duration::from_micros(300));
    }

    #[test]
    fn partial_overlap_is_clamped_to_the_request() {
        // Pause starts inside the request but outlives it.
        let spans = vec![
            mk(SpanKind::Request, 1, None, "request", Some(0), 0, 200),
            mk(SpanKind::Update, 10, None, "update", Some(0), 100, 400),
            mk(
                SpanKind::UpdatePhase,
                11,
                Some(10),
                "bind",
                Some(0),
                100,
                400,
            ),
        ];
        let rep = stall_report(&spans);
        let u = &rep.updates[0];
        assert_eq!(u.attributed, Duration::from_micros(100));
        assert_eq!(u.unattributed, Duration::from_micros(300));
    }

    #[test]
    fn json_and_render_are_well_formed() {
        let spans = vec![
            mk(SpanKind::Request, 1, None, "request", Some(0), 0, 1000),
            mk(SpanKind::Update, 10, None, "rollback", Some(0), 100, 300),
            mk(
                SpanKind::UpdatePhase,
                11,
                Some(10),
                "bind",
                Some(0),
                100,
                300,
            ),
        ];
        let rep = stall_report(&spans);
        let json = rep.to_json();
        assert!(json.contains("\"rollback\":true"));
        assert!(json.contains("\"per_phase_ms\":{\"bind\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let text = rep.render();
        assert!(text.contains("ROLLBACK"), "{text}");
        assert!(text.contains("stall report"), "{text}");
    }
}
