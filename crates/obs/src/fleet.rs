//! Fleet-wide aggregation: merge per-worker registries into one
//! exposition, and reconstruct rollout timelines from the shared
//! journal.
//!
//! A fleet coordinator holds one [`Registry`] per worker (each labelled
//! `worker="i"`) plus its own coordinator registry; scraping is just
//! snapshotting them all and rendering one merged document — the
//! per-worker label keeps series distinct, exactly as a Prometheus
//! server would see N scrape targets.

use std::time::Duration;

use crate::journal::{Event, Stage};
use crate::metrics::{snapshots_to_json, snapshots_to_prometheus, MetricSnapshot, Registry};

/// Merges the registries into one Prometheus text exposition
/// (`# HELP`/`# TYPE` emitted once per metric name; per-registry labels
/// keep the series apart).
pub fn aggregate_text(registries: &[Registry]) -> String {
    snapshots_to_prometheus(&collect(registries))
}

/// Merges the registries into one JSON snapshot document.
pub fn aggregate_json(registries: &[Registry]) -> String {
    snapshots_to_json(&collect(registries))
}

fn collect(registries: &[Registry]) -> Vec<MetricSnapshot> {
    registries.iter().flat_map(|r| r.snapshot()).collect()
}

/// One update lifecycle summarised from the journal: the row of a
/// rollout timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RolloutRow {
    /// Update lifecycle id.
    pub update: u64,
    /// Worker the lifecycle ran on (if tagged).
    pub worker: Option<usize>,
    /// Source version.
    pub from_version: String,
    /// Target version.
    pub to_version: String,
    /// When the patch was enqueued (journal-epoch offset).
    pub enqueued_at: Duration,
    /// When the lifecycle resolved (committed/aborted), if it did.
    pub resolved_at: Option<Duration>,
    /// Whether the patch committed (`false` = aborted or unresolved).
    pub committed: bool,
    /// Whether this lifecycle was a rollback (closed with `RolledBack`):
    /// the worker runs the *prior* version again.
    pub rolled_back: bool,
    /// Gate (barrier) wait inside the pause, if any.
    pub gate_wait: Duration,
    /// Sum of the timed apply-phase durations (drain included).
    pub phase_total: Duration,
    /// Abort cause, when aborted.
    pub detail: Option<String>,
}

/// Reconstructs one row per update lifecycle from journal events,
/// ordered by enqueue time — the fleet-wide rollout timeline.
pub fn rollout_timeline(events: &[Event]) -> Vec<RolloutRow> {
    let mut ids: Vec<u64> = events.iter().map(|e| e.update).collect();
    ids.sort_unstable();
    ids.dedup();

    let mut rows: Vec<RolloutRow> = ids
        .into_iter()
        .filter_map(|id| {
            let evs: Vec<&Event> = events.iter().filter(|e| e.update == id).collect();
            let enq = evs.iter().find(|e| e.stage == Stage::Enqueued)?;
            let mut row = RolloutRow {
                update: id,
                worker: enq.worker,
                from_version: enq.from_version.clone(),
                to_version: enq.to_version.clone(),
                enqueued_at: enq.at,
                resolved_at: None,
                committed: false,
                rolled_back: false,
                gate_wait: Duration::ZERO,
                phase_total: Duration::ZERO,
                detail: None,
            };
            for e in &evs {
                match e.stage {
                    Stage::GateWait => row.gate_wait += e.dur.unwrap_or_default(),
                    s if Stage::PHASES.contains(&s) => {
                        row.phase_total += e.dur.unwrap_or_default();
                    }
                    Stage::Committed => {
                        row.committed = true;
                        row.resolved_at = Some(e.at);
                    }
                    Stage::Aborted => {
                        row.resolved_at = Some(e.at);
                        row.detail = e.detail.clone();
                    }
                    Stage::RolledBack => {
                        row.rolled_back = true;
                        row.resolved_at = Some(e.at);
                        row.detail = e.detail.clone();
                    }
                    _ => {}
                }
            }
            Some(row)
        })
        .collect();
    rows.sort_by_key(|r| r.enqueued_at);
    rows
}

/// Renders a rollout timeline as a fixed-width table. Rollback rows are
/// rendered distinctly: reversed transition arrow (`v2 <- v1` reads "the
/// worker runs v1 again") and a `ROLLBACK` status, so a healed rollout
/// is visibly different from a clean forward one at a glance.
pub fn render_timeline(rows: &[RolloutRow]) -> String {
    fn ms(d: Duration) -> f64 {
        d.as_secs_f64() * 1e3
    }
    let mut out = format!(
        "{:<8} {:<8} {:<14} {:<10} {:>12} {:>12} {:>12}  detail\n",
        "update", "worker", "transition", "status", "enqueued ms", "gate ms", "phases ms"
    );
    for r in rows {
        let (transition, status) = if r.rolled_back {
            (
                format!("{} <- {}", r.to_version, r.from_version),
                "ROLLBACK",
            )
        } else if r.committed {
            (
                format!("{} -> {}", r.from_version, r.to_version),
                "committed",
            )
        } else if r.resolved_at.is_some() {
            (format!("{} -> {}", r.from_version, r.to_version), "aborted")
        } else {
            (format!("{} -> {}", r.from_version, r.to_version), "pending")
        };
        out.push_str(&format!(
            "{:<8} {:<8} {:<14} {:<10} {:>12.3} {:>12.3} {:>12.3}  {}\n",
            r.update,
            r.worker.map_or("-".to_string(), |w| w.to_string()),
            transition,
            status,
            ms(r.enqueued_at),
            ms(r.gate_wait),
            ms(r.phase_total),
            r.detail.as_deref().unwrap_or(""),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;

    #[test]
    fn aggregation_merges_worker_series() {
        let w0 = Registry::with_labels(&[("worker", "0")]);
        let w1 = Registry::with_labels(&[("worker", "1")]);
        w0.counter("reqs_total", "served").add(2);
        w1.counter("reqs_total", "served").add(5);
        let text = aggregate_text(&[w0.clone(), w1.clone()]);
        // One header, two series.
        assert_eq!(text.matches("# TYPE reqs_total counter").count(), 1);
        assert!(text.contains("reqs_total{worker=\"0\"} 2"), "{text}");
        assert!(text.contains("reqs_total{worker=\"1\"} 5"), "{text}");
        let json = aggregate_json(&[w0, w1]);
        assert_eq!(json.matches("reqs_total").count(), 2, "{json}");
    }

    #[test]
    fn timeline_reconstructs_lifecycles() {
        let j = Journal::new();
        let a = j.next_update_id();
        j.record(Some(0), a, "v1", "v2", Stage::Enqueued, None, None);
        j.record(
            Some(0),
            a,
            "v1",
            "v2",
            Stage::GateWait,
            Some(Duration::from_micros(30)),
            None,
        );
        for s in Stage::PHASES {
            j.record(
                Some(0),
                a,
                "v1",
                "v2",
                s,
                Some(Duration::from_micros(10)),
                None,
            );
        }
        j.record(
            Some(0),
            a,
            "v1",
            "v2",
            Stage::Committed,
            Some(Duration::from_micros(70)),
            None,
        );
        let b = j.next_update_id();
        j.record(Some(1), b, "v1", "v2", Stage::Enqueued, None, None);
        j.record(
            Some(1),
            b,
            "v1",
            "v2",
            Stage::Aborted,
            None,
            Some("verification failed"),
        );

        let rows = rollout_timeline(&j.events());
        assert_eq!(rows.len(), 2);
        assert!(rows[0].committed);
        assert_eq!(rows[0].worker, Some(0));
        assert_eq!(rows[0].gate_wait, Duration::from_micros(30));
        assert_eq!(rows[0].phase_total, Duration::from_micros(70));
        assert!(rows[0].resolved_at.is_some());
        assert!(!rows[1].committed);
        assert_eq!(rows[1].detail.as_deref(), Some("verification failed"));
    }

    #[test]
    fn timeline_render_marks_rollbacks_distinctly() {
        let j = Journal::new();
        let a = j.next_update_id();
        j.record(Some(0), a, "v1", "v2", Stage::Enqueued, None, None);
        j.record(Some(0), a, "v1", "v2", Stage::Committed, None, None);
        let b = j.next_update_id();
        j.record(Some(0), b, "v2", "v1", Stage::Enqueued, None, None);
        j.record(
            Some(0),
            b,
            "v2",
            "v1",
            Stage::RolledBack,
            None,
            Some("pause SLO breach"),
        );
        let text = render_timeline(&rollout_timeline(&j.events()));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(
            lines[1].contains("v1 -> v2") && lines[1].contains("committed"),
            "{text}"
        );
        // The rollback row reads right-to-left and is shouted.
        assert!(
            lines[2].contains("v1 <- v2") && lines[2].contains("ROLLBACK"),
            "{text}"
        );
        assert!(lines[2].contains("pause SLO breach"), "{text}");
    }
}
