//! Fleet-wide aggregation: merge per-worker registries into one
//! exposition, and reconstruct rollout timelines from the shared
//! journal.
//!
//! A fleet coordinator holds one [`Registry`] per worker (each labelled
//! `worker="i"`) plus its own coordinator registry; scraping is just
//! snapshotting them all and rendering one merged document — the
//! per-worker label keeps series distinct, exactly as a Prometheus
//! server would see N scrape targets.

use std::time::Duration;

use crate::journal::{Event, Stage};
use crate::metrics::{snapshots_to_json, snapshots_to_prometheus, MetricSnapshot, Registry};

/// Merges the registries into one Prometheus text exposition
/// (`# HELP`/`# TYPE` emitted once per metric name; per-registry labels
/// keep the series apart).
pub fn aggregate_text(registries: &[Registry]) -> String {
    snapshots_to_prometheus(&collect(registries))
}

/// Merges the registries into one JSON snapshot document.
pub fn aggregate_json(registries: &[Registry]) -> String {
    snapshots_to_json(&collect(registries))
}

fn collect(registries: &[Registry]) -> Vec<MetricSnapshot> {
    registries.iter().flat_map(|r| r.snapshot()).collect()
}

/// One update lifecycle summarised from the journal: the row of a
/// rollout timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RolloutRow {
    /// Update lifecycle id.
    pub update: u64,
    /// Worker the lifecycle ran on (if tagged).
    pub worker: Option<usize>,
    /// Source version.
    pub from_version: String,
    /// Target version.
    pub to_version: String,
    /// When the patch was enqueued (journal-epoch offset).
    pub enqueued_at: Duration,
    /// When the lifecycle resolved (committed/aborted), if it did.
    pub resolved_at: Option<Duration>,
    /// Whether the patch committed (`false` = aborted or unresolved).
    pub committed: bool,
    /// Whether this lifecycle was a rollback (closed with `RolledBack`):
    /// the worker runs the *prior* version again.
    pub rolled_back: bool,
    /// Gate (barrier) wait inside the pause, if any.
    pub gate_wait: Duration,
    /// Sum of the timed apply-phase durations (drain included).
    pub phase_total: Duration,
    /// Abort cause, when aborted.
    pub detail: Option<String>,
}

/// Reconstructs one row per update lifecycle from journal events,
/// ordered by enqueue time — the fleet-wide rollout timeline.
pub fn rollout_timeline(events: &[Event]) -> Vec<RolloutRow> {
    let mut ids: Vec<u64> = events.iter().map(|e| e.update).collect();
    ids.sort_unstable();
    ids.dedup();

    let mut rows: Vec<RolloutRow> = ids
        .into_iter()
        .filter_map(|id| {
            let evs: Vec<&Event> = events.iter().filter(|e| e.update == id).collect();
            let enq = evs.iter().find(|e| e.stage == Stage::Enqueued)?;
            let mut row = RolloutRow {
                update: id,
                worker: enq.worker,
                from_version: enq.from_version.clone(),
                to_version: enq.to_version.clone(),
                enqueued_at: enq.at,
                resolved_at: None,
                committed: false,
                rolled_back: false,
                gate_wait: Duration::ZERO,
                phase_total: Duration::ZERO,
                detail: None,
            };
            for e in &evs {
                match e.stage {
                    Stage::GateWait => row.gate_wait += e.dur.unwrap_or_default(),
                    s if Stage::PHASES.contains(&s) => {
                        row.phase_total += e.dur.unwrap_or_default();
                    }
                    Stage::Committed => {
                        row.committed = true;
                        row.resolved_at = Some(e.at);
                    }
                    Stage::Aborted => {
                        row.resolved_at = Some(e.at);
                        row.detail = e.detail.clone();
                    }
                    Stage::RolledBack => {
                        row.rolled_back = true;
                        row.resolved_at = Some(e.at);
                        row.detail = e.detail.clone();
                    }
                    _ => {}
                }
            }
            Some(row)
        })
        .collect();
    rows.sort_by_key(|r| r.enqueued_at);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;

    #[test]
    fn aggregation_merges_worker_series() {
        let w0 = Registry::with_labels(&[("worker", "0")]);
        let w1 = Registry::with_labels(&[("worker", "1")]);
        w0.counter("reqs_total", "served").add(2);
        w1.counter("reqs_total", "served").add(5);
        let text = aggregate_text(&[w0.clone(), w1.clone()]);
        // One header, two series.
        assert_eq!(text.matches("# TYPE reqs_total counter").count(), 1);
        assert!(text.contains("reqs_total{worker=\"0\"} 2"), "{text}");
        assert!(text.contains("reqs_total{worker=\"1\"} 5"), "{text}");
        let json = aggregate_json(&[w0, w1]);
        assert_eq!(json.matches("reqs_total").count(), 2, "{json}");
    }

    #[test]
    fn timeline_reconstructs_lifecycles() {
        let j = Journal::new();
        let a = j.next_update_id();
        j.record(Some(0), a, "v1", "v2", Stage::Enqueued, None, None);
        j.record(
            Some(0),
            a,
            "v1",
            "v2",
            Stage::GateWait,
            Some(Duration::from_micros(30)),
            None,
        );
        for s in Stage::PHASES {
            j.record(
                Some(0),
                a,
                "v1",
                "v2",
                s,
                Some(Duration::from_micros(10)),
                None,
            );
        }
        j.record(
            Some(0),
            a,
            "v1",
            "v2",
            Stage::Committed,
            Some(Duration::from_micros(70)),
            None,
        );
        let b = j.next_update_id();
        j.record(Some(1), b, "v1", "v2", Stage::Enqueued, None, None);
        j.record(
            Some(1),
            b,
            "v1",
            "v2",
            Stage::Aborted,
            None,
            Some("verification failed"),
        );

        let rows = rollout_timeline(&j.events());
        assert_eq!(rows.len(), 2);
        assert!(rows[0].committed);
        assert_eq!(rows[0].worker, Some(0));
        assert_eq!(rows[0].gate_wait, Duration::from_micros(30));
        assert_eq!(rows[0].phase_total, Duration::from_micros(70));
        assert!(rows[0].resolved_at.is_some());
        assert!(!rows[1].committed);
        assert_eq!(rows[1].detail.as_deref(), Some("verification failed"));
    }
}
