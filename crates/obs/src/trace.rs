//! Causal tracing: spans for requests, update pauses, and rollouts.
//!
//! The journal answers "*an* update paused *a* worker"; the tracer
//! answers "*which requests* stalled, in *which phase*, for *how long*".
//! Every layer of the stack records [`Span`]s into one shared [`Tracer`]:
//!
//! * `flashed::Server` emits a **request span** per sampled request with
//!   child phase spans across the AMPED lifecycle (`admit → park →
//!   guest-exec → respond`);
//! * `dsu_core::Updater` emits an **update span** per applied patch whose
//!   children are the pipeline phases (`gate-wait`, `drain`, `verify`,
//!   …, `transform`) carrying the *same* durations that land in
//!   `PhaseTimings` and the journal;
//! * the fleet coordinator opens a **rollout span** and propagates its
//!   `(trace, span)` context to every worker, so per-worker update spans
//!   parent under one rollout trace.
//!
//! The collector is lock-cheap by construction: id allocation and
//! sampling decisions are relaxed atomics, and recording takes one short
//! mutex push into a bounded ring (drop-oldest; a `dropped` counter keeps
//! the loss visible). Request spans are **sampled** (1-in-N, N
//! adjustable at runtime); update and rollout spans are rare and always
//! recorded.
//!
//! All spans share the tracer's own epoch clock, so intervals from
//! different threads and layers are directly comparable — that is what
//! makes the overlap join in [`crate::attribution`] sound. Export with
//! [`to_chrome_trace`] (Chrome trace-event JSON, loads in Perfetto or
//! `chrome://tracing`) and check structural invariants with
//! [`validate_spans`].

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json;

/// What a span measures (selects the analyzer treatment and the export
/// lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One served request, admit to respond (root).
    Request,
    /// A stage of a request's lifecycle (child of a `Request` span).
    RequestPhase,
    /// One applied update or rollback: the whole pause on one worker.
    Update,
    /// A pipeline phase of an update (child of an `Update` span).
    UpdatePhase,
    /// A coordinator-side rollout: parents the fleet's update spans.
    Rollout,
}

impl SpanKind {
    /// Stable lowercase name (used in the Chrome export's `cat` field).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::RequestPhase => "request-phase",
            SpanKind::Update => "update",
            SpanKind::UpdatePhase => "update-phase",
            SpanKind::Rollout => "rollout",
        }
    }
}

/// One timed interval, tagged with its causal context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Trace this span belongs to (one trace per request / per rollout).
    pub trace: u64,
    /// Span id, unique tracer-wide.
    pub id: u64,
    /// Parent span id within the same trace, if any.
    pub parent: Option<u64>,
    /// Kind (selects analyzer treatment and export lane).
    pub kind: SpanKind,
    /// Operation name (`"request"`, `"guest-exec"`, `"update"`,
    /// `"drain"`, …).
    pub name: &'static str,
    /// Worker the span ran on (`None` for coordinator spans).
    pub worker: Option<usize>,
    /// Start offset from the tracer's epoch.
    pub start: Duration,
    /// Length of the interval (zero for instant events).
    pub dur: Duration,
    /// Update lifecycle id (journal cross-link), for update spans.
    pub update: Option<u64>,
    /// Request id, for request spans.
    pub request: Option<u64>,
    /// Free-form context (version transition, policy, …).
    pub detail: Option<String>,
}

impl Span {
    /// End offset from the tracer's epoch.
    pub fn end(&self) -> Duration {
        self.start + self.dur
    }

    /// Length of the overlap between this span's interval and another's
    /// (zero when disjoint).
    pub fn overlap(&self, other: &Span) -> Duration {
        let start = self.start.max(other.start);
        let end = self.end().min(other.end());
        end.saturating_sub(start)
    }
}

struct Inner {
    epoch: Instant,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    /// Record 1 in N request traces (0 disables request sampling
    /// entirely; 1 records every request).
    sample_every: AtomicU64,
    sample_seq: AtomicU64,
    dropped: AtomicU64,
    cap: usize,
    spans: Mutex<VecDeque<Span>>,
}

/// Shared, bounded span collector (cheap to clone; all clones feed the
/// same ring).
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("spans", &self.len())
            .finish()
    }
}

/// Default ring capacity: enough for a rollout's worth of sampled
/// request spans plus every update span, small enough to stay cheap.
pub const DEFAULT_CAPACITY: usize = 65_536;

impl Tracer {
    /// Creates an empty tracer; the epoch is now, every request is
    /// sampled, capacity is [`DEFAULT_CAPACITY`] spans.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a tracer whose ring holds at most `cap` spans
    /// (drop-oldest beyond that).
    pub fn with_capacity(cap: usize) -> Tracer {
        Tracer {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                next_trace: AtomicU64::new(0),
                next_span: AtomicU64::new(0),
                sample_every: AtomicU64::new(1),
                sample_seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                cap: cap.max(1),
                spans: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// Sets the request-sampling rate: record 1 in `n` requests. `0`
    /// turns request tracing off entirely; update and rollout spans are
    /// always recorded regardless.
    pub fn set_sampling(&self, n: u64) {
        self.inner.sample_every.store(n, Ordering::Relaxed);
    }

    /// Decides whether the next request should be traced (one relaxed
    /// fetch-add; no lock).
    pub fn sample(&self) -> bool {
        match self.inner.sample_every.load(Ordering::Relaxed) {
            0 => false,
            1 => true,
            n => self
                .inner
                .sample_seq
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(n),
        }
    }

    /// Allocates a fresh trace id.
    pub fn next_trace_id(&self) -> u64 {
        self.inner.next_trace.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Allocates a fresh span id (unique tracer-wide).
    pub fn next_span_id(&self) -> u64 {
        self.inner.next_span.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Converts an [`Instant`] to an offset from the tracer's epoch
    /// (zero for instants before the epoch).
    pub fn since_epoch(&self, t: Instant) -> Duration {
        t.checked_duration_since(self.inner.epoch)
            .unwrap_or_default()
    }

    /// Offset of "now" from the tracer's epoch.
    pub fn now(&self) -> Duration {
        self.inner.epoch.elapsed()
    }

    /// Records one finished span (one short lock; drop-oldest when the
    /// ring is full).
    pub fn record(&self, span: Span) {
        self.record_many(std::iter::once(span));
    }

    /// Records a batch of finished spans under a single lock
    /// acquisition (a request or update records its whole tree at once).
    pub fn record_many<I: IntoIterator<Item = Span>>(&self, spans: I) {
        let mut ring = self.inner.spans.lock().expect("poisoned");
        for span in spans {
            if ring.len() >= self.inner.cap {
                ring.pop_front();
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(span);
        }
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.inner.spans.lock().expect("poisoned").len()
    }

    /// Whether no spans are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans dropped to the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of the ring, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        self.inner
            .spans
            .lock()
            .expect("poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Drains the ring, returning the held spans (oldest first).
    pub fn take_spans(&self) -> Vec<Span> {
        self.inner
            .spans
            .lock()
            .expect("poisoned")
            .drain(..)
            .collect()
    }
}

/// Checks structural invariants over a span set: span ids unique, every
/// parent reference resolves within the same trace, and every child's
/// interval nests inside its parent's.
///
/// Parents that fell out of a bounded ring are reported — run this on
/// complete captures (tests, smoke runs), not on a ring that has
/// dropped spans.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_spans(spans: &[Span]) -> Result<(), String> {
    let mut by_id: HashMap<u64, &Span> = HashMap::with_capacity(spans.len());
    for s in spans {
        if by_id.insert(s.id, s).is_some() {
            return Err(format!("duplicate span id {}", s.id));
        }
    }
    for s in spans {
        let Some(pid) = s.parent else { continue };
        let parent = by_id
            .get(&pid)
            .ok_or_else(|| format!("span {} ({}) has unknown parent {pid}", s.id, s.name))?;
        if parent.trace != s.trace {
            return Err(format!(
                "span {} ({}) crosses traces: {} vs parent's {}",
                s.id, s.name, s.trace, parent.trace
            ));
        }
        if s.start < parent.start || s.end() > parent.end() {
            return Err(format!(
                "span {} ({}) [{:?}, {:?}] escapes parent {} ({}) [{:?}, {:?}]",
                s.id,
                s.name,
                s.start,
                s.end(),
                parent.id,
                parent.name,
                parent.start,
                parent.end()
            ));
        }
    }
    Ok(())
}

/// Renders a span set as Chrome trace-event JSON (the `traceEvents`
/// array format) — loadable in Perfetto or `chrome://tracing`.
///
/// Workers map to processes (`pid` = worker + 1; coordinator spans get
/// `pid` 0); span kinds map to threads within each process, so request
/// traffic and update pauses stack in separate lanes and their overlap
/// is visible at a glance. Timestamps and durations are microseconds
/// from the tracer epoch, as the format requires.
pub fn to_chrome_trace(spans: &[Span]) -> String {
    fn pid(worker: Option<usize>) -> usize {
        worker.map_or(0, |w| w + 1)
    }
    fn tid(kind: SpanKind) -> u32 {
        match kind {
            SpanKind::Request | SpanKind::RequestPhase => 1,
            SpanKind::Update | SpanKind::UpdatePhase => 2,
            SpanKind::Rollout => 3,
        }
    }
    fn micros(d: Duration) -> String {
        json::num(d.as_secs_f64() * 1e6)
    }

    let mut events: Vec<String> = Vec::with_capacity(spans.len() + 8);

    // Metadata: name each process and lane once.
    let mut pids: Vec<usize> = spans.iter().map(|s| pid(s.worker)).collect();
    pids.sort_unstable();
    pids.dedup();
    for p in &pids {
        let name = if *p == 0 {
            "coordinator".to_string()
        } else {
            format!("worker {}", p - 1)
        };
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json::escape(&name)
        ));
        for (t, lane) in [(1u32, "requests"), (2, "updates"), (3, "rollouts")] {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":{t},\
                 \"args\":{{\"name\":\"{lane}\"}}}}"
            ));
        }
    }

    for s in spans {
        let mut args = format!("\"trace\":{},\"span\":{}", s.trace, s.id);
        if let Some(p) = s.parent {
            args.push_str(&format!(",\"parent\":{p}"));
        }
        if let Some(u) = s.update {
            args.push_str(&format!(",\"update\":{u}"));
        }
        if let Some(r) = s.request {
            args.push_str(&format!(",\"request\":{r}"));
        }
        if let Some(d) = &s.detail {
            args.push_str(&format!(",\"detail\":\"{}\"", json::escape(d)));
        }
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{},\"args\":{{{args}}}}}",
            json::escape(s.name),
            s.kind.name(),
            micros(s.start),
            micros(s.dur),
            pid(s.worker),
            tid(s.kind),
        ));
    }
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: Option<u64>, start_us: u64, dur_us: u64) -> Span {
        Span {
            trace,
            id,
            parent,
            kind: if parent.is_none() {
                SpanKind::Request
            } else {
                SpanKind::RequestPhase
            },
            name: if parent.is_none() { "request" } else { "phase" },
            worker: Some(0),
            start: Duration::from_micros(start_us),
            dur: Duration::from_micros(dur_us),
            update: None,
            request: None,
            detail: None,
        }
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let t = Tracer::new();
        let a = t.next_span_id();
        let b = t.next_span_id();
        assert!(b > a);
        assert_ne!(t.next_trace_id(), t.next_trace_id());
    }

    #[test]
    fn sampling_rates() {
        let t = Tracer::new();
        assert!(t.sample(), "default samples everything");
        t.set_sampling(0);
        assert!(!t.sample(), "0 disables request tracing");
        t.set_sampling(4);
        let hits = (0..100).filter(|_| t.sample()).count();
        assert_eq!(hits, 25);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::with_capacity(2);
        for i in 0..4 {
            t.record(span(1, i + 1, None, i * 10, 5));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 2);
        let held = t.spans();
        assert_eq!(held[0].id, 3);
        assert_eq!(held[1].id, 4);
    }

    #[test]
    fn validation_accepts_nested_rejects_escaping() {
        let ok = vec![span(1, 1, None, 0, 100), span(1, 2, Some(1), 10, 50)];
        validate_spans(&ok).unwrap();

        let escaping = vec![span(1, 1, None, 0, 100), span(1, 2, Some(1), 90, 50)];
        let e = validate_spans(&escaping).unwrap_err();
        assert!(e.contains("escapes"), "{e}");

        let orphan = vec![span(1, 2, Some(7), 0, 10)];
        let e = validate_spans(&orphan).unwrap_err();
        assert!(e.contains("unknown parent"), "{e}");

        let cross = vec![span(1, 1, None, 0, 100), span(2, 2, Some(1), 10, 50)];
        let e = validate_spans(&cross).unwrap_err();
        assert!(e.contains("crosses traces"), "{e}");
    }

    #[test]
    fn overlap_is_symmetric_and_clamped() {
        let a = span(1, 1, None, 0, 100);
        let b = span(1, 2, None, 60, 100);
        assert_eq!(a.overlap(&b), Duration::from_micros(40));
        assert_eq!(b.overlap(&a), Duration::from_micros(40));
        let c = span(1, 3, None, 500, 10);
        assert_eq!(a.overlap(&c), Duration::ZERO);
    }

    #[test]
    fn chrome_export_shape() {
        let spans = vec![span(1, 1, None, 0, 100), span(1, 2, Some(1), 10, 50)];
        let json = to_chrome_trace(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"parent\":1"));
        assert!(json.contains("\"pid\":1"), "worker 0 maps to pid 1");
        // No trailing commas and balanced braces — a cheap well-formedness
        // proxy for the hand-rolled writer.
        assert!(!json.contains(",]") && !json.contains(",}"));
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }
}
