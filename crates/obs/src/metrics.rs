//! The metrics registry: atomic counters, gauges and bucketed
//! histograms, with Prometheus-style text exposition and a JSON
//! snapshot.
//!
//! Instruments are `Arc` handles over relaxed atomics — recording on the
//! hot path is one `fetch_add`, no locks — so the serving loop, the
//! updater and a scraping coordinator can share them freely. The
//! registry itself is only locked at registration and scrape time.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json;

/// Default latency-histogram bucket upper bounds, in microseconds
/// (5µs … 1s, roughly logarithmic — interpreter request service times
/// and update pauses both land comfortably inside).
pub const LATENCY_BOUNDS_US: [u64; 17] = [
    5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    500_000, 1_000_000,
];

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for mirroring a counter accumulated
    /// elsewhere (e.g. a VM's thread-local `ExecStats`). The caller owns
    /// the monotonicity promise.
    pub fn store(&self, v: u64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    v: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.v.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    /// Bucket upper bounds in microseconds, ascending.
    bounds_us: Vec<u64>,
    /// One count per bound, plus a final overflow (+Inf) bucket.
    counts: Vec<AtomicU64>,
    sum_ns: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket duration histogram (cumulative exposition, Prometheus
/// style).
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Histogram {
    /// Creates a histogram with the given bucket upper bounds (µs,
    /// ascending; an overflow bucket is added automatically).
    pub fn new(bounds_us: &[u64]) -> Histogram {
        assert!(
            bounds_us.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let counts = (0..=bounds_us.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds_us: bounds_us.to_vec(),
                counts,
                sum_ns: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let idx = self.inner.bounds_us.partition_point(|&bound| bound < us);
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.inner
            .sum_ns
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.inner.sum_ns.load(Ordering::Relaxed))
    }

    /// Per-bucket (non-cumulative) counts; the final entry is overflow.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Bucket upper bounds in microseconds (no overflow entry).
    pub fn bounds_us(&self) -> &[u64] {
        &self.inner.bounds_us
    }

    /// Approximate quantile (`0.0..=1.0`): the upper bound of the bucket
    /// containing the q-th observation (the last finite bound for
    /// overflow observations). Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, c) in self.bucket_counts().iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = self
                    .inner
                    .bounds_us
                    .get(i)
                    .or_else(|| self.inner.bounds_us.last())
                    .copied()
                    .unwrap_or(0);
                return Duration::from_micros(bound);
            }
        }
        Duration::from_micros(*self.inner.bounds_us.last().unwrap_or(&0))
    }
}

/// A point-in-time reading of one registered metric.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Metric name (Prometheus conventions: `snake_case`, unit-suffixed).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Label set (registry labels plus per-metric labels).
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: MetricValue,
}

/// The value part of a [`MetricSnapshot`].
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram reading.
    Histogram {
        /// Bucket upper bounds (µs).
        bounds_us: Vec<u64>,
        /// Per-bucket counts (last = overflow).
        counts: Vec<u64>,
        /// Sum of observations.
        sum: Duration,
        /// Number of observations.
        count: u64,
    },
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

struct RegistryInner {
    labels: Vec<(String, String)>,
    entries: Mutex<Vec<Entry>>,
}

/// A named collection of instruments, scrape-able as Prometheus text or
/// a JSON snapshot. Cheap to clone (all clones share the instruments).
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("labels", &self.inner.labels)
            .field(
                "metrics",
                &self.inner.entries.lock().expect("poisoned").len(),
            )
            .finish()
    }
}

impl Registry {
    /// An unlabelled registry.
    pub fn new() -> Registry {
        Registry::with_labels(&[])
    }

    /// A registry whose every metric carries `labels` (e.g.
    /// `[("worker", "3")]` for one fleet worker's instruments).
    pub fn with_labels(labels: &[(&str, &str)]) -> Registry {
        Registry {
            inner: Arc::new(RegistryInner {
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                entries: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The registry-level label set.
    pub fn labels(&self) -> &[(String, String)] {
        &self.inner.labels
    }

    fn full_labels(&self, extra: &[(&str, &str)]) -> Vec<(String, String)> {
        let mut l = self.inner.labels.clone();
        l.extend(extra.iter().map(|(k, v)| (k.to_string(), v.to_string())));
        l
    }

    /// Registers (or returns the existing) counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_labeled(name, help, &[])
    }

    /// Registers (or returns the existing) counter with extra labels.
    pub fn counter_labeled(&self, name: &str, help: &str, extra: &[(&str, &str)]) -> Counter {
        let labels = self.full_labels(extra);
        let mut entries = self.inner.entries.lock().expect("poisoned");
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            match &e.instrument {
                Instrument::Counter(c) => return c.clone(),
                _ => panic!("metric `{name}` already registered with another type"),
            }
        }
        let c = Counter::default();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            instrument: Instrument::Counter(c.clone()),
        });
        c
    }

    /// Registers (or returns the existing) gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_labeled(name, help, &[])
    }

    /// Registers (or returns the existing) gauge with extra labels.
    pub fn gauge_labeled(&self, name: &str, help: &str, extra: &[(&str, &str)]) -> Gauge {
        let labels = self.full_labels(extra);
        let mut entries = self.inner.entries.lock().expect("poisoned");
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            match &e.instrument {
                Instrument::Gauge(g) => return g.clone(),
                _ => panic!("metric `{name}` already registered with another type"),
            }
        }
        let g = Gauge::default();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            instrument: Instrument::Gauge(g.clone()),
        });
        g
    }

    /// Registers (or returns the existing) histogram `name` with the
    /// given bucket upper bounds (µs).
    pub fn histogram(&self, name: &str, help: &str, bounds_us: &[u64]) -> Histogram {
        self.histogram_labeled(name, help, &[], bounds_us)
    }

    /// Registers (or returns the existing) histogram with extra labels.
    pub fn histogram_labeled(
        &self,
        name: &str,
        help: &str,
        extra: &[(&str, &str)],
        bounds_us: &[u64],
    ) -> Histogram {
        let labels = self.full_labels(extra);
        let mut entries = self.inner.entries.lock().expect("poisoned");
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            match &e.instrument {
                Instrument::Histogram(h) => return h.clone(),
                _ => panic!("metric `{name}` already registered with another type"),
            }
        }
        let h = Histogram::new(bounds_us);
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            instrument: Instrument::Histogram(h.clone()),
        });
        h
    }

    /// Point-in-time readings of every registered metric, in
    /// registration order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.inner.entries.lock().expect("poisoned");
        entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                help: e.help.clone(),
                labels: e.labels.clone(),
                value: match &e.instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram {
                        bounds_us: h.bounds_us().to_vec(),
                        counts: h.bucket_counts(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                },
            })
            .collect()
    }

    /// Prometheus text exposition of every registered metric.
    pub fn prometheus_text(&self) -> String {
        snapshots_to_prometheus(&self.snapshot())
    }

    /// JSON snapshot (`{"metrics": [...]}`) of every registered metric.
    pub fn json_snapshot(&self) -> String {
        snapshots_to_json(&self.snapshot())
    }
}

fn label_str(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", json::escape(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

fn label_str_with(labels: &[(String, String)], extra_k: &str, extra_v: &str) -> String {
    let mut l = labels.to_vec();
    l.push((extra_k.to_string(), extra_v.to_string()));
    label_str(&l)
}

/// Renders metric snapshots (possibly from several registries) as one
/// Prometheus text exposition; `# HELP`/`# TYPE` headers are emitted
/// once per metric name.
pub fn snapshots_to_prometheus(snaps: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    let mut seen: Vec<&str> = Vec::new();
    // Group by name, preserving first-appearance order.
    let mut names: Vec<&str> = Vec::new();
    for s in snaps {
        if !names.contains(&s.name.as_str()) {
            names.push(&s.name);
        }
    }
    for name in names {
        for s in snaps.iter().filter(|s| s.name == name) {
            if !seen.contains(&name) {
                seen.push(name);
                let ty = match s.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram { .. } => "histogram",
                };
                out.push_str(&format!("# HELP {name} {}\n# TYPE {name} {ty}\n", s.help));
            }
            match &s.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{name}{} {v}\n", label_str(&s.labels)));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{name}{} {v}\n", label_str(&s.labels)));
                }
                MetricValue::Histogram {
                    bounds_us,
                    counts,
                    sum,
                    count,
                } => {
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum += c;
                        let le = match bounds_us.get(i) {
                            Some(us) => json::num(*us as f64 / 1e6),
                            None => "+Inf".to_string(),
                        };
                        out.push_str(&format!(
                            "{name}_bucket{} {cum}\n",
                            label_str_with(&s.labels, "le", &le)
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_sum{} {}\n",
                        label_str(&s.labels),
                        json::num(sum.as_secs_f64())
                    ));
                    out.push_str(&format!("{name}_count{} {count}\n", label_str(&s.labels)));
                }
            }
        }
    }
    out
}

/// Renders metric snapshots as a JSON document.
pub fn snapshots_to_json(snaps: &[MetricSnapshot]) -> String {
    let mut items = Vec::with_capacity(snaps.len());
    for s in snaps {
        let labels: Vec<String> = s
            .labels
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", json::escape(k), json::escape(v)))
            .collect();
        let body = match &s.value {
            MetricValue::Counter(v) => format!("\"type\":\"counter\",\"value\":{v}"),
            MetricValue::Gauge(v) => format!("\"type\":\"gauge\",\"value\":{v}"),
            MetricValue::Histogram {
                bounds_us,
                counts,
                sum,
                count,
            } => {
                let buckets: Vec<String> = counts
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let le = match bounds_us.get(i) {
                            Some(us) => format!("{}", *us as f64 / 1e6),
                            None => "null".to_string(),
                        };
                        format!("{{\"le_s\":{le},\"count\":{c}}}")
                    })
                    .collect();
                format!(
                    "\"type\":\"histogram\",\"count\":{count},\"sum_s\":{},\"buckets\":[{}]",
                    json::num(sum.as_secs_f64()),
                    buckets.join(",")
                )
            }
        };
        items.push(format!(
            "{{\"name\":\"{}\",\"labels\":{{{}}},{body}}}",
            json::escape(&s.name),
            labels.join(",")
        ));
    }
    format!("{{\"metrics\":[{}]}}", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_count() {
        let r = Registry::new();
        let c = r.counter("reqs_total", "requests");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same instrument.
        assert_eq!(r.counter("reqs_total", "requests").get(), 5);

        let g = r.gauge("queue_depth", "queued");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[10, 100, 1000]);
        h.observe(Duration::from_micros(5)); // bucket 0 (<=10µs)
        h.observe(Duration::from_micros(10)); // bucket 0 (le is inclusive)
        h.observe(Duration::from_micros(50)); // bucket 1
        h.observe(Duration::from_micros(5000)); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 1, 0, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), Duration::from_micros(5065));
        assert_eq!(h.quantile(0.5), Duration::from_micros(10));
        assert_eq!(h.quantile(0.75), Duration::from_micros(100));
        // Overflow quantile reports the last finite bound.
        assert_eq!(h.quantile(1.0), Duration::from_micros(1000));
    }

    #[test]
    fn prometheus_text_shape() {
        let r = Registry::with_labels(&[("worker", "0")]);
        r.counter("reqs_total", "requests served").add(3);
        let h = r.histogram("svc_seconds", "service time", &[1000, 10000]);
        h.observe(Duration::from_micros(500));
        h.observe(Duration::from_micros(20000));
        let text = r.prometheus_text();
        assert!(text.contains("# HELP reqs_total requests served"), "{text}");
        assert!(text.contains("# TYPE reqs_total counter"), "{text}");
        assert!(text.contains("reqs_total{worker=\"0\"} 3"), "{text}");
        assert!(text.contains("# TYPE svc_seconds histogram"), "{text}");
        assert!(
            text.contains("svc_seconds_bucket{worker=\"0\",le=\"0.001\"} 1"),
            "{text}"
        );
        // Buckets are cumulative; +Inf equals _count.
        assert!(
            text.contains("svc_seconds_bucket{worker=\"0\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("svc_seconds_count{worker=\"0\"} 2"), "{text}");
    }

    #[test]
    fn json_snapshot_shape() {
        let r = Registry::new();
        r.gauge("version_skew", "distinct versions minus one")
            .set(2);
        let json = r.json_snapshot();
        assert!(json.starts_with("{\"metrics\":["), "{json}");
        assert!(json.contains("\"name\":\"version_skew\""), "{json}");
        assert!(json.contains("\"type\":\"gauge\",\"value\":2"), "{json}");
    }

    #[test]
    #[should_panic(expected = "another type")]
    fn type_confusion_panics() {
        let r = Registry::new();
        r.counter("m", "h");
        r.gauge("m", "h");
    }
}
