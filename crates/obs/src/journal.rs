//! The structured update-lifecycle journal.
//!
//! Every dynamic patch traverses an explicit lifecycle:
//!
//! ```text
//! enqueued -> gate-wait -> drain -> verify -> compat -> link -> bind
//!          -> init -> transform -> committed | aborted | rolled-back
//! ```
//!
//! A *reverse* lifecycle — an inverse patch or snapshot restore undoing a
//! prior update — traverses the same stages and closes with
//! [`Stage::RolledBack`] instead of `Committed`; its phase events carry
//! the rollback's own `PhaseTimings`, so the phase-sum invariant holds
//! for downgrades exactly as it does for upgrades.
//!
//! Each step is recorded as a timestamped, worker-tagged [`Event`] in a
//! shared [`Journal`]. Events carry the *same* phase durations that land
//! in `PhaseTimings`, so a journal is a faithful, exportable view of the
//! update pauses the paper's Table 2 reports — per-patch phase sums match
//! `UpdateReport::timings.total()` exactly, by construction.
//!
//! The journal is a cheap-clone handle (`Arc` inside): a fleet shares one
//! journal across every worker thread and the coordinator, and events
//! interleave on a single monotonic sequence and a common epoch clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json;

/// One step of the update lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Patch entered the pending queue.
    Enqueued,
    /// Rollout-gate rendezvous (barrier wait) at the start of a pause.
    GateWait,
    /// Quiescence drain: in-flight host work (e.g. parked event-loop
    /// reads) completing before the patch binds.
    Drain,
    /// Bytecode re-verification.
    Verify,
    /// Update-safety (compatibility) analysis.
    Compat,
    /// Dynamic linking.
    Link,
    /// Atomic rebinding.
    Bind,
    /// New-global initialisers.
    Init,
    /// State transformation.
    Transform,
    /// The patch applied; the process runs the new version.
    Committed,
    /// The patch was rejected or rolled back.
    Aborted,
    /// A rollback applied: the process runs the *prior* version again
    /// (inverse patch with reverse state transformers, or a snapshot
    /// restore). Terminal, like `Committed`, and carries the rollback's
    /// whole-pipeline total the same way.
    RolledBack,
}

impl Stage {
    /// The seven timed apply phases, in pipeline order (the breakdown of
    /// `PhaseTimings`).
    pub const PHASES: [Stage; 7] = [
        Stage::Drain,
        Stage::Verify,
        Stage::Compat,
        Stage::Link,
        Stage::Bind,
        Stage::Init,
        Stage::Transform,
    ];

    /// Stable lowercase name (used in JSONL and metric labels).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Enqueued => "enqueued",
            Stage::GateWait => "gate-wait",
            Stage::Drain => "drain",
            Stage::Verify => "verify",
            Stage::Compat => "compat",
            Stage::Link => "link",
            Stage::Bind => "bind",
            Stage::Init => "init",
            Stage::Transform => "transform",
            Stage::Committed => "committed",
            Stage::Aborted => "aborted",
            Stage::RolledBack => "rolled-back",
        }
    }

    /// Position in the canonical lifecycle order (for bracketing checks).
    fn order(self) -> u8 {
        match self {
            Stage::Enqueued => 0,
            Stage::GateWait => 1,
            Stage::Drain => 2,
            Stage::Verify => 3,
            Stage::Compat => 4,
            Stage::Link => 5,
            Stage::Bind => 6,
            Stage::Init => 7,
            Stage::Transform => 8,
            Stage::Committed => 9,
            Stage::Aborted => 9,
            Stage::RolledBack => 9,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global monotonic sequence number (unique within one journal).
    pub seq: u64,
    /// Offset from the journal's epoch when the event was recorded.
    pub at: Duration,
    /// The worker the event happened on (fleet runs), if tagged.
    pub worker: Option<usize>,
    /// The update lifecycle this event belongs to (one id per queued
    /// patch instance).
    pub update: u64,
    /// Source version of the transition.
    pub from_version: String,
    /// Target version of the transition.
    pub to_version: String,
    /// Lifecycle step.
    pub stage: Stage,
    /// Duration of the step, for timed stages (phases, gate waits, and
    /// `Committed`, which carries the whole-pipeline total).
    pub dur: Option<Duration>,
    /// Free-form context (abort cause, failing phase, queue depth).
    pub detail: Option<String>,
    /// Trace id of the update's root span, when tracing was on — the
    /// journal↔trace cross-link.
    pub trace: Option<u64>,
    /// Span id of the update's root span, when tracing was on.
    pub span: Option<u64>,
}

impl Event {
    /// One JSON object, no trailing newline (JSONL line).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"seq\":{},\"at_ns\":{},\"update\":{},\"from\":\"{}\",\"to\":\"{}\",\"stage\":\"{}\"",
            self.seq,
            self.at.as_nanos(),
            self.update,
            json::escape(&self.from_version),
            json::escape(&self.to_version),
            self.stage.name(),
        );
        if let Some(w) = self.worker {
            s.push_str(&format!(",\"worker\":{w}"));
        }
        if let Some(d) = self.dur {
            s.push_str(&format!(",\"dur_ns\":{}", d.as_nanos()));
        }
        if let Some(detail) = &self.detail {
            s.push_str(&format!(",\"detail\":\"{}\"", json::escape(detail)));
        }
        if let Some(t) = self.trace {
            s.push_str(&format!(",\"trace\":{t}"));
        }
        if let Some(sp) = self.span {
            s.push_str(&format!(",\"span\":{sp}"));
        }
        s.push('}');
        s
    }
}

struct Inner {
    epoch: Instant,
    seq: AtomicU64,
    updates: AtomicU64,
    events: Mutex<Vec<Event>>,
}

/// A shared, append-only event journal (cheap to clone; all clones
/// observe the same stream).
#[derive(Clone)]
pub struct Journal {
    inner: Arc<Inner>,
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::new()
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("events", &self.len())
            .finish()
    }
}

impl Journal {
    /// Creates an empty journal; the epoch is now.
    pub fn new() -> Journal {
        Journal {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                updates: AtomicU64::new(0),
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Allocates a fresh update-lifecycle id (one per queued patch
    /// instance; ids are unique journal-wide, so a fleet-wide rollout of
    /// one patch yields one lifecycle per worker).
    pub fn next_update_id(&self) -> u64 {
        self.inner.updates.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Time elapsed since the journal epoch.
    pub fn elapsed(&self) -> Duration {
        self.inner.epoch.elapsed()
    }

    /// Appends one event; `at` and `seq` are assigned here, so events are
    /// globally ordered by both.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        worker: Option<usize>,
        update: u64,
        from_version: &str,
        to_version: &str,
        stage: Stage,
        dur: Option<Duration>,
        detail: Option<&str>,
    ) {
        self.record_spanned(
            worker,
            update,
            from_version,
            to_version,
            stage,
            dur,
            detail,
            None,
        );
    }

    /// [`Journal::record`] plus the trace cross-link: `link` is the
    /// `(trace, span)` of the update's root span in the tracer, attached
    /// to every lifecycle event so journal rows resolve into the trace
    /// and back.
    #[allow(clippy::too_many_arguments)]
    pub fn record_spanned(
        &self,
        worker: Option<usize>,
        update: u64,
        from_version: &str,
        to_version: &str,
        stage: Stage,
        dur: Option<Duration>,
        detail: Option<&str>,
        link: Option<(u64, u64)>,
    ) {
        let at = self.inner.epoch.elapsed();
        let mut events = self.inner.events.lock().expect("poisoned");
        // Seq assigned under the lock so event order and seq order agree.
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
        events.push(Event {
            seq,
            at,
            worker,
            update,
            from_version: from_version.to_string(),
            to_version: to_version.to_string(),
            stage,
            dur,
            detail: detail.map(str::to_string),
            trace: link.map(|(t, _)| t),
            span: link.map(|(_, s)| s),
        });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.events.lock().expect("poisoned").len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All events, in record order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.lock().expect("poisoned").clone()
    }

    /// Events of one update lifecycle, in record order.
    pub fn events_for(&self, update: u64) -> Vec<Event> {
        self.inner
            .events
            .lock()
            .expect("poisoned")
            .iter()
            .filter(|e| e.update == update)
            .cloned()
            .collect()
    }

    /// Distinct update-lifecycle ids present, ascending.
    pub fn update_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .inner
            .events
            .lock()
            .expect("poisoned")
            .iter()
            .map(|e| e.update)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The whole journal as JSONL (one event object per line).
    pub fn to_jsonl(&self) -> String {
        let events = self.inner.events.lock().expect("poisoned");
        let mut out = String::new();
        for e in events.iter() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

/// Checks the ordering invariants of one update's event slice (as
/// returned by [`Journal::events_for`]): non-empty, opening with
/// `Enqueued`, closing with `Committed`, `Aborted` or `RolledBack`,
/// stages in lifecycle order, and `seq`/`at` monotonic. Abort and
/// rollback orderings are accepted alike: an aborted lifecycle may close
/// straight from `Enqueued`, and a reverse (rollback) lifecycle runs the
/// same phase sequence as a forward one (same checks, closing with
/// `RolledBack`).
///
/// Beyond ordering, it enforces the accounting invariants the rest of
/// the stack relies on: the terminal stage appears exactly once (at the
/// end), each timed pipeline phase at most once (so `Drain` precedes
/// every other phase of the same pause, gate waits precede the drain),
/// every event agrees on the version transition, and a `Committed` or
/// `RolledBack` total equals the sum of the phase durations exactly —
/// the phase-sum law that makes journal and `PhaseTimings` (and the
/// trace's phase spans) interchangeable.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_lifecycle(events: &[Event]) -> Result<(), String> {
    let first = events.first().ok_or("no events for update")?;
    if first.stage != Stage::Enqueued {
        return Err(format!(
            "lifecycle opens with {}, not enqueued",
            first.stage
        ));
    }
    let last = events.last().expect("non-empty");
    if !matches!(
        last.stage,
        Stage::Committed | Stage::Aborted | Stage::RolledBack
    ) {
        return Err(format!(
            "lifecycle closes with {}, not committed/aborted/rolled-back",
            last.stage
        ));
    }
    for pair in events.windows(2) {
        if pair[1].seq <= pair[0].seq {
            return Err(format!(
                "seq not monotonic: {} then {}",
                pair[0].seq, pair[1].seq
            ));
        }
        if pair[1].at < pair[0].at {
            return Err(format!(
                "timestamps not monotonic: {:?} then {:?}",
                pair[0].at, pair[1].at
            ));
        }
        if pair[1].stage.order() < pair[0].stage.order() {
            return Err(format!(
                "stage order violated: {} after {}",
                pair[1].stage, pair[0].stage
            ));
        }
    }
    // One terminal, and only at the end (two order-9 stages would slip
    // past the monotonic check above).
    for e in &events[..events.len() - 1] {
        if matches!(
            e.stage,
            Stage::Committed | Stage::Aborted | Stage::RolledBack
        ) {
            return Err(format!("terminal {} before the last event", e.stage));
        }
    }
    // Each pipeline phase at most once per lifecycle: a second Drain (or
    // a repeated Bind) means two pauses were folded into one id.
    for phase in Stage::PHASES {
        if events.iter().filter(|e| e.stage == phase).count() > 1 {
            return Err(format!("phase {phase} recorded more than once"));
        }
    }
    // A lifecycle is one version transition; every event must agree.
    for e in events {
        if e.from_version != first.from_version || e.to_version != first.to_version {
            return Err(format!(
                "version transition drifts: {}->{} then {}->{}",
                first.from_version, first.to_version, e.from_version, e.to_version
            ));
        }
    }
    // Phase-sum law: a committed/rolled-back total is exactly the sum of
    // its phase events (gate waits are pause overhead, not pipeline
    // time, and are excluded — same as `PhaseTimings::total`).
    if matches!(last.stage, Stage::Committed | Stage::RolledBack) {
        if let Some(total) = last.dur {
            let phase_sum: Duration = events
                .iter()
                .filter(|e| Stage::PHASES.contains(&e.stage))
                .filter_map(|e| e.dur)
                .sum();
            if phase_sum != total {
                return Err(format!(
                    "terminal {} total {total:?} != phase sum {phase_sum:?}",
                    last.stage
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_lifecycle(j: &Journal, worker: Option<usize>) -> u64 {
        let u = j.next_update_id();
        j.record(worker, u, "v1", "v2", Stage::Enqueued, None, None);
        for stage in Stage::PHASES {
            j.record(
                worker,
                u,
                "v1",
                "v2",
                stage,
                Some(Duration::from_micros(10)),
                None,
            );
        }
        j.record(
            worker,
            u,
            "v1",
            "v2",
            Stage::Committed,
            Some(Duration::from_micros(70)),
            None,
        );
        u
    }

    #[test]
    fn events_are_globally_ordered() {
        let j = Journal::new();
        let a = full_lifecycle(&j, Some(0));
        let b = full_lifecycle(&j, Some(1));
        assert_ne!(a, b);
        let events = j.events();
        assert_eq!(events.len(), 18);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(j.update_ids(), vec![a, b]);
    }

    #[test]
    fn lifecycle_validation_accepts_well_formed() {
        let j = Journal::new();
        let u = full_lifecycle(&j, None);
        validate_lifecycle(&j.events_for(u)).unwrap();
    }

    #[test]
    fn lifecycle_validation_rejects_misordered() {
        let j = Journal::new();
        let u = j.next_update_id();
        j.record(None, u, "v1", "v2", Stage::Enqueued, None, None);
        j.record(None, u, "v1", "v2", Stage::Link, None, None);
        j.record(None, u, "v1", "v2", Stage::Verify, None, None);
        j.record(None, u, "v1", "v2", Stage::Committed, None, None);
        let e = validate_lifecycle(&j.events_for(u)).unwrap_err();
        assert!(e.contains("stage order"), "{e}");

        // Missing terminal stage.
        let u2 = j.next_update_id();
        j.record(None, u2, "v1", "v2", Stage::Enqueued, None, None);
        let e = validate_lifecycle(&j.events_for(u2)).unwrap_err();
        assert!(e.contains("closes"), "{e}");
    }

    #[test]
    fn lifecycle_validation_accepts_rollbacks() {
        // A reverse lifecycle runs the same stages and closes with
        // `RolledBack`; the validator treats it like any terminal stage.
        let j = Journal::new();
        let u = j.next_update_id();
        j.record(Some(2), u, "v2", "v1", Stage::Enqueued, None, None);
        for stage in Stage::PHASES {
            j.record(
                Some(2),
                u,
                "v2",
                "v1",
                stage,
                Some(Duration::from_micros(5)),
                None,
            );
        }
        j.record(
            Some(2),
            u,
            "v2",
            "v1",
            Stage::RolledBack,
            Some(Duration::from_micros(35)),
            None,
        );
        validate_lifecycle(&j.events_for(u)).unwrap();

        // An aborted rollback is still a valid (abort-ordered) lifecycle.
        let u2 = j.next_update_id();
        j.record(Some(2), u2, "v2", "v1", Stage::Enqueued, None, None);
        j.record(
            Some(2),
            u2,
            "v2",
            "v1",
            Stage::Aborted,
            None,
            Some("no snapshot available"),
        );
        validate_lifecycle(&j.events_for(u2)).unwrap();
    }

    #[test]
    fn lifecycle_validation_enforces_accounting_laws() {
        // Terminal total must equal the phase sum exactly.
        let j = Journal::new();
        let u = j.next_update_id();
        j.record(None, u, "v1", "v2", Stage::Enqueued, None, None);
        j.record(
            None,
            u,
            "v1",
            "v2",
            Stage::Bind,
            Some(Duration::from_micros(10)),
            None,
        );
        j.record(
            None,
            u,
            "v1",
            "v2",
            Stage::Committed,
            Some(Duration::from_micros(11)),
            None,
        );
        let e = validate_lifecycle(&j.events_for(u)).unwrap_err();
        assert!(e.contains("phase sum"), "{e}");

        // A repeated phase means two pauses were folded into one id.
        let u2 = j.next_update_id();
        j.record(None, u2, "v2", "v1", Stage::Enqueued, None, None);
        j.record(None, u2, "v2", "v1", Stage::Drain, None, None);
        j.record(None, u2, "v2", "v1", Stage::Drain, None, None);
        j.record(None, u2, "v2", "v1", Stage::RolledBack, None, None);
        let e = validate_lifecycle(&j.events_for(u2)).unwrap_err();
        assert!(e.contains("more than once"), "{e}");

        // The version transition may not drift mid-lifecycle.
        let u3 = j.next_update_id();
        j.record(None, u3, "v1", "v2", Stage::Enqueued, None, None);
        j.record(None, u3, "v1", "v3", Stage::Committed, None, None);
        let e = validate_lifecycle(&j.events_for(u3)).unwrap_err();
        assert!(e.contains("drifts"), "{e}");

        // A terminal stage anywhere but last is rejected.
        let u4 = j.next_update_id();
        j.record(None, u4, "v1", "v2", Stage::Enqueued, None, None);
        j.record(None, u4, "v1", "v2", Stage::Committed, None, None);
        j.record(None, u4, "v1", "v2", Stage::RolledBack, None, None);
        let e = validate_lifecycle(&j.events_for(u4)).unwrap_err();
        assert!(e.contains("before the last"), "{e}");
    }

    #[test]
    fn spanned_events_carry_the_cross_link() {
        let j = Journal::new();
        let u = j.next_update_id();
        j.record_spanned(
            Some(1),
            u,
            "v1",
            "v2",
            Stage::Enqueued,
            None,
            None,
            Some((7, 42)),
        );
        let e = &j.events_for(u)[0];
        assert_eq!(e.trace, Some(7));
        assert_eq!(e.span, Some(42));
        let line = j.to_jsonl();
        assert!(line.contains("\"trace\":7"), "{line}");
        assert!(line.contains("\"span\":42"), "{line}");
    }

    #[test]
    fn jsonl_round_trips_the_essentials() {
        let j = Journal::new();
        let u = j.next_update_id();
        j.record(
            Some(3),
            u,
            "v1",
            "v2",
            Stage::Aborted,
            None,
            Some("state transformer \"x\" trapped"),
        );
        let jsonl = j.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        let line = jsonl.lines().next().unwrap();
        assert!(line.contains("\"stage\":\"aborted\""), "{line}");
        assert!(line.contains("\"worker\":3"), "{line}");
        assert!(line.contains("\\\"x\\\""), "{line}");
        assert!(line.starts_with('{') && line.ends_with('}'));
    }

    #[test]
    fn clones_share_the_stream() {
        let j = Journal::new();
        let j2 = j.clone();
        full_lifecycle(&j, None);
        assert_eq!(j2.len(), 9);
        assert!(!j2.is_empty());
    }
}
