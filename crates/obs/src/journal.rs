//! The structured update-lifecycle journal.
//!
//! Every dynamic patch traverses an explicit lifecycle:
//!
//! ```text
//! enqueued -> gate-wait -> drain -> verify -> compat -> link -> bind
//!          -> init -> transform -> committed | aborted | rolled-back
//! ```
//!
//! A *reverse* lifecycle — an inverse patch or snapshot restore undoing a
//! prior update — traverses the same stages and closes with
//! [`Stage::RolledBack`] instead of `Committed`; its phase events carry
//! the rollback's own `PhaseTimings`, so the phase-sum invariant holds
//! for downgrades exactly as it does for upgrades.
//!
//! Each step is recorded as a timestamped, worker-tagged [`Event`] in a
//! shared [`Journal`]. Events carry the *same* phase durations that land
//! in `PhaseTimings`, so a journal is a faithful, exportable view of the
//! update pauses the paper's Table 2 reports — per-patch phase sums match
//! `UpdateReport::timings.total()` exactly, by construction.
//!
//! The journal is a cheap-clone handle (`Arc` inside): a fleet shares one
//! journal across every worker thread and the coordinator, and events
//! interleave on a single monotonic sequence and a common epoch clock.

use std::fs;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json;

/// One step of the update lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Patch entered the pending queue.
    Enqueued,
    /// Rollout-gate rendezvous (barrier wait) at the start of a pause.
    GateWait,
    /// Quiescence drain: in-flight host work (e.g. parked event-loop
    /// reads) completing before the patch binds.
    Drain,
    /// Bytecode re-verification.
    Verify,
    /// Update-safety (compatibility) analysis.
    Compat,
    /// Dynamic linking.
    Link,
    /// Atomic rebinding.
    Bind,
    /// New-global initialisers.
    Init,
    /// State transformation.
    Transform,
    /// The patch applied; the process runs the new version.
    Committed,
    /// The patch was rejected or rolled back.
    Aborted,
    /// A rollback applied: the process runs the *prior* version again
    /// (inverse patch with reverse state transformers, or a snapshot
    /// restore). Terminal, like `Committed`, and carries the rollback's
    /// whole-pipeline total the same way.
    RolledBack,
}

impl Stage {
    /// The seven timed apply phases, in pipeline order (the breakdown of
    /// `PhaseTimings`).
    pub const PHASES: [Stage; 7] = [
        Stage::Drain,
        Stage::Verify,
        Stage::Compat,
        Stage::Link,
        Stage::Bind,
        Stage::Init,
        Stage::Transform,
    ];

    /// Stable lowercase name (used in JSONL and metric labels).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Enqueued => "enqueued",
            Stage::GateWait => "gate-wait",
            Stage::Drain => "drain",
            Stage::Verify => "verify",
            Stage::Compat => "compat",
            Stage::Link => "link",
            Stage::Bind => "bind",
            Stage::Init => "init",
            Stage::Transform => "transform",
            Stage::Committed => "committed",
            Stage::Aborted => "aborted",
            Stage::RolledBack => "rolled-back",
        }
    }

    /// The inverse of [`Stage::name`] (for reading persisted journals
    /// back).
    pub fn from_name(name: &str) -> Option<Stage> {
        Some(match name {
            "enqueued" => Stage::Enqueued,
            "gate-wait" => Stage::GateWait,
            "drain" => Stage::Drain,
            "verify" => Stage::Verify,
            "compat" => Stage::Compat,
            "link" => Stage::Link,
            "bind" => Stage::Bind,
            "init" => Stage::Init,
            "transform" => Stage::Transform,
            "committed" => Stage::Committed,
            "aborted" => Stage::Aborted,
            "rolled-back" => Stage::RolledBack,
            _ => return None,
        })
    }

    /// Position in the canonical lifecycle order (for bracketing checks).
    fn order(self) -> u8 {
        match self {
            Stage::Enqueued => 0,
            Stage::GateWait => 1,
            Stage::Drain => 2,
            Stage::Verify => 3,
            Stage::Compat => 4,
            Stage::Link => 5,
            Stage::Bind => 6,
            Stage::Init => 7,
            Stage::Transform => 8,
            Stage::Committed => 9,
            Stage::Aborted => 9,
            Stage::RolledBack => 9,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global monotonic sequence number (unique within one journal).
    pub seq: u64,
    /// Offset from the journal's epoch when the event was recorded.
    pub at: Duration,
    /// The worker the event happened on (fleet runs), if tagged.
    pub worker: Option<usize>,
    /// The update lifecycle this event belongs to (one id per queued
    /// patch instance).
    pub update: u64,
    /// Source version of the transition.
    pub from_version: String,
    /// Target version of the transition.
    pub to_version: String,
    /// Lifecycle step.
    pub stage: Stage,
    /// Duration of the step, for timed stages (phases, gate waits, and
    /// `Committed`, which carries the whole-pipeline total).
    pub dur: Option<Duration>,
    /// Free-form context (abort cause, failing phase, queue depth).
    pub detail: Option<String>,
    /// Trace id of the update's root span, when tracing was on — the
    /// journal↔trace cross-link.
    pub trace: Option<u64>,
    /// Span id of the update's root span, when tracing was on.
    pub span: Option<u64>,
}

impl Event {
    /// One JSON object, no trailing newline (JSONL line).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"seq\":{},\"at_ns\":{},\"update\":{},\"from\":\"{}\",\"to\":\"{}\",\"stage\":\"{}\"",
            self.seq,
            self.at.as_nanos(),
            self.update,
            json::escape(&self.from_version),
            json::escape(&self.to_version),
            self.stage.name(),
        );
        if let Some(w) = self.worker {
            s.push_str(&format!(",\"worker\":{w}"));
        }
        if let Some(d) = self.dur {
            s.push_str(&format!(",\"dur_ns\":{}", d.as_nanos()));
        }
        if let Some(detail) = &self.detail {
            s.push_str(&format!(",\"detail\":\"{}\"", json::escape(detail)));
        }
        if let Some(t) = self.trace {
            s.push_str(&format!(",\"trace\":{t}"));
        }
        if let Some(sp) = self.span {
            s.push_str(&format!(",\"span\":{sp}"));
        }
        s.push('}');
        s
    }

    /// Parses one JSONL line back into an event — the inverse of
    /// [`Event::to_json`], for recovering a persisted journal.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed field.
    pub fn from_json(line: &str) -> Result<Event, String> {
        let fields = json::parse_flat_object(line)?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let int = |key: &str| -> Result<i128, String> {
            get(key)
                .and_then(json::Scalar::as_int)
                .ok_or_else(|| format!("missing or non-integer `{key}`"))
        };
        let text = |key: &str| -> Result<String, String> {
            get(key)
                .and_then(json::Scalar::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string `{key}`"))
        };
        let opt_int = |key: &str| -> Result<Option<i128>, String> {
            match get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_int()
                    .map(Some)
                    .ok_or_else(|| format!("non-integer `{key}`")),
            }
        };
        let stage_name = text("stage")?;
        let stage =
            Stage::from_name(&stage_name).ok_or_else(|| format!("unknown stage `{stage_name}`"))?;
        Ok(Event {
            seq: int("seq")? as u64,
            at: Duration::from_nanos(int("at_ns")? as u64),
            worker: opt_int("worker")?.map(|w| w as usize),
            update: int("update")? as u64,
            from_version: text("from")?,
            to_version: text("to")?,
            stage,
            dur: opt_int("dur_ns")?.map(|d| Duration::from_nanos(d as u64)),
            detail: match get("detail") {
                None => None,
                Some(v) => Some(
                    v.as_str()
                        .map(str::to_string)
                        .ok_or("non-string `detail`")?,
                ),
            },
            trace: opt_int("trace")?.map(|t| t as u64),
            span: opt_int("span")?.map(|s| s as u64),
        })
    }
}

struct Inner {
    epoch: Instant,
    /// Offset added to every timestamp. Zero for a fresh journal; a
    /// recovered journal sets it to the last persisted timestamp so the
    /// stream stays monotonic across the restart boundary.
    base: Duration,
    seq: AtomicU64,
    updates: AtomicU64,
    events: Mutex<Vec<Event>>,
    /// Write-ahead log: when set, every recorded event is appended (and
    /// flushed) as one JSONL line before `record` returns.
    wal: Mutex<Option<BufWriter<fs::File>>>,
}

/// A shared, append-only event journal (cheap to clone; all clones
/// observe the same stream).
#[derive(Clone)]
pub struct Journal {
    inner: Arc<Inner>,
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::new()
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("events", &self.len())
            .finish()
    }
}

impl Journal {
    /// Creates an empty journal; the epoch is now.
    pub fn new() -> Journal {
        Journal {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                base: Duration::ZERO,
                seq: AtomicU64::new(0),
                updates: AtomicU64::new(0),
                events: Mutex::new(Vec::new()),
                wal: Mutex::new(None),
            }),
        }
    }

    /// Creates an empty journal with a write-ahead log at `path`: every
    /// event is appended to the file as one JSONL line (flushed) before
    /// `record` returns, so a crash loses at most the event being
    /// written. The file is truncated if it exists.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn with_wal(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let file = fs::File::create(path)?;
        let j = Journal::new();
        *j.inner.wal.lock().expect("poisoned") = Some(BufWriter::new(file));
        Ok(j)
    }

    /// Reconstructs a journal from a write-ahead log written by
    /// [`Journal::with_wal`], and reopens the file in append mode so the
    /// recovered journal keeps persisting to the same log.
    ///
    /// Sequence numbers continue from the highest persisted `seq`, update
    /// ids from the highest persisted id, and new timestamps are offset
    /// past the last persisted one — so `validate_lifecycle` holds for
    /// lifecycles that straddle the restart boundary.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O failure or the first unparsable
    /// line.
    pub fn recover(path: impl AsRef<Path>) -> Result<Journal, String> {
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(Event::from_json(line).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        let seq = events.iter().map(|e| e.seq).max().unwrap_or(0);
        let updates = events.iter().map(|e| e.update).max().unwrap_or(0);
        let base = events.iter().map(|e| e.at).max().unwrap_or(Duration::ZERO);
        let file = fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| format!("reopening {}: {e}", path.as_ref().display()))?;
        Ok(Journal {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                base,
                seq: AtomicU64::new(seq),
                updates: AtomicU64::new(updates),
                events: Mutex::new(events),
                wal: Mutex::new(Some(BufWriter::new(file))),
            }),
        })
    }

    /// Allocates a fresh update-lifecycle id (one per queued patch
    /// instance; ids are unique journal-wide, so a fleet-wide rollout of
    /// one patch yields one lifecycle per worker).
    pub fn next_update_id(&self) -> u64 {
        self.inner.updates.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Time elapsed since the journal epoch (offset past the recovery
    /// point for a recovered journal).
    pub fn elapsed(&self) -> Duration {
        self.inner.base + self.inner.epoch.elapsed()
    }

    /// Appends one event; `at` and `seq` are assigned here, so events are
    /// globally ordered by both.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        worker: Option<usize>,
        update: u64,
        from_version: &str,
        to_version: &str,
        stage: Stage,
        dur: Option<Duration>,
        detail: Option<&str>,
    ) {
        self.record_spanned(
            worker,
            update,
            from_version,
            to_version,
            stage,
            dur,
            detail,
            None,
        );
    }

    /// [`Journal::record`] plus the trace cross-link: `link` is the
    /// `(trace, span)` of the update's root span in the tracer, attached
    /// to every lifecycle event so journal rows resolve into the trace
    /// and back.
    #[allow(clippy::too_many_arguments)]
    pub fn record_spanned(
        &self,
        worker: Option<usize>,
        update: u64,
        from_version: &str,
        to_version: &str,
        stage: Stage,
        dur: Option<Duration>,
        detail: Option<&str>,
        link: Option<(u64, u64)>,
    ) {
        let at = self.inner.base + self.inner.epoch.elapsed();
        let mut events = self.inner.events.lock().expect("poisoned");
        // Seq assigned under the lock so event order and seq order agree.
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let event = Event {
            seq,
            at,
            worker,
            update,
            from_version: from_version.to_string(),
            to_version: to_version.to_string(),
            stage,
            dur,
            detail: detail.map(str::to_string),
            trace: link.map(|(t, _)| t),
            span: link.map(|(_, s)| s),
        };
        // Persist (still under the events lock, so file order matches seq
        // order) before making the event visible in memory.
        if let Some(w) = self.inner.wal.lock().expect("poisoned").as_mut() {
            let _ = writeln!(w, "{}", event.to_json());
            let _ = w.flush();
        }
        events.push(event);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.events.lock().expect("poisoned").len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All events, in record order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.lock().expect("poisoned").clone()
    }

    /// Events of one update lifecycle, in record order.
    pub fn events_for(&self, update: u64) -> Vec<Event> {
        self.inner
            .events
            .lock()
            .expect("poisoned")
            .iter()
            .filter(|e| e.update == update)
            .cloned()
            .collect()
    }

    /// Distinct update-lifecycle ids present, ascending.
    pub fn update_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .inner
            .events
            .lock()
            .expect("poisoned")
            .iter()
            .map(|e| e.update)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The whole journal as JSONL (one event object per line).
    pub fn to_jsonl(&self) -> String {
        let events = self.inner.events.lock().expect("poisoned");
        let mut out = String::new();
        for e in events.iter() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

/// Checks the ordering invariants of one update's event slice (as
/// returned by [`Journal::events_for`]): non-empty, opening with
/// `Enqueued`, closing with `Committed`, `Aborted` or `RolledBack`,
/// stages in lifecycle order, and `seq`/`at` monotonic. Abort and
/// rollback orderings are accepted alike: an aborted lifecycle may close
/// straight from `Enqueued`, and a reverse (rollback) lifecycle runs the
/// same phase sequence as a forward one (same checks, closing with
/// `RolledBack`).
///
/// Beyond ordering, it enforces the accounting invariants the rest of
/// the stack relies on: the terminal stage appears exactly once (at the
/// end), each timed pipeline phase at most once (so `Drain` precedes
/// every other phase of the same pause, gate waits precede the drain),
/// every event agrees on the version transition, and a `Committed` or
/// `RolledBack` total equals the sum of the phase durations exactly —
/// the phase-sum law that makes journal and `PhaseTimings` (and the
/// trace's phase spans) interchangeable.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_lifecycle(events: &[Event]) -> Result<(), String> {
    let first = events.first().ok_or("no events for update")?;
    if first.stage != Stage::Enqueued {
        return Err(format!(
            "lifecycle opens with {}, not enqueued",
            first.stage
        ));
    }
    let last = events.last().expect("non-empty");
    if !matches!(
        last.stage,
        Stage::Committed | Stage::Aborted | Stage::RolledBack
    ) {
        return Err(format!(
            "lifecycle closes with {}, not committed/aborted/rolled-back",
            last.stage
        ));
    }
    for pair in events.windows(2) {
        if pair[1].seq <= pair[0].seq {
            return Err(format!(
                "seq not monotonic: {} then {}",
                pair[0].seq, pair[1].seq
            ));
        }
        if pair[1].at < pair[0].at {
            return Err(format!(
                "timestamps not monotonic: {:?} then {:?}",
                pair[0].at, pair[1].at
            ));
        }
        if pair[1].stage.order() < pair[0].stage.order() {
            return Err(format!(
                "stage order violated: {} after {}",
                pair[1].stage, pair[0].stage
            ));
        }
    }
    // One terminal, and only at the end (two order-9 stages would slip
    // past the monotonic check above).
    for e in &events[..events.len() - 1] {
        if matches!(
            e.stage,
            Stage::Committed | Stage::Aborted | Stage::RolledBack
        ) {
            return Err(format!("terminal {} before the last event", e.stage));
        }
    }
    // Each pipeline phase at most once per lifecycle: a second Drain (or
    // a repeated Bind) means two pauses were folded into one id.
    for phase in Stage::PHASES {
        if events.iter().filter(|e| e.stage == phase).count() > 1 {
            return Err(format!("phase {phase} recorded more than once"));
        }
    }
    // A lifecycle is one version transition; every event must agree.
    for e in events {
        if e.from_version != first.from_version || e.to_version != first.to_version {
            return Err(format!(
                "version transition drifts: {}->{} then {}->{}",
                first.from_version, first.to_version, e.from_version, e.to_version
            ));
        }
    }
    // Phase-sum law: a committed/rolled-back total is exactly the sum of
    // its phase events (gate waits are pause overhead, not pipeline
    // time, and are excluded — same as `PhaseTimings::total`).
    if matches!(last.stage, Stage::Committed | Stage::RolledBack) {
        if let Some(total) = last.dur {
            let phase_sum: Duration = events
                .iter()
                .filter(|e| Stage::PHASES.contains(&e.stage))
                .filter_map(|e| e.dur)
                .sum();
            if phase_sum != total {
                return Err(format!(
                    "terminal {} total {total:?} != phase sum {phase_sum:?}",
                    last.stage
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_lifecycle(j: &Journal, worker: Option<usize>) -> u64 {
        let u = j.next_update_id();
        j.record(worker, u, "v1", "v2", Stage::Enqueued, None, None);
        for stage in Stage::PHASES {
            j.record(
                worker,
                u,
                "v1",
                "v2",
                stage,
                Some(Duration::from_micros(10)),
                None,
            );
        }
        j.record(
            worker,
            u,
            "v1",
            "v2",
            Stage::Committed,
            Some(Duration::from_micros(70)),
            None,
        );
        u
    }

    #[test]
    fn events_are_globally_ordered() {
        let j = Journal::new();
        let a = full_lifecycle(&j, Some(0));
        let b = full_lifecycle(&j, Some(1));
        assert_ne!(a, b);
        let events = j.events();
        assert_eq!(events.len(), 18);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(j.update_ids(), vec![a, b]);
    }

    #[test]
    fn lifecycle_validation_accepts_well_formed() {
        let j = Journal::new();
        let u = full_lifecycle(&j, None);
        validate_lifecycle(&j.events_for(u)).unwrap();
    }

    #[test]
    fn lifecycle_validation_rejects_misordered() {
        let j = Journal::new();
        let u = j.next_update_id();
        j.record(None, u, "v1", "v2", Stage::Enqueued, None, None);
        j.record(None, u, "v1", "v2", Stage::Link, None, None);
        j.record(None, u, "v1", "v2", Stage::Verify, None, None);
        j.record(None, u, "v1", "v2", Stage::Committed, None, None);
        let e = validate_lifecycle(&j.events_for(u)).unwrap_err();
        assert!(e.contains("stage order"), "{e}");

        // Missing terminal stage.
        let u2 = j.next_update_id();
        j.record(None, u2, "v1", "v2", Stage::Enqueued, None, None);
        let e = validate_lifecycle(&j.events_for(u2)).unwrap_err();
        assert!(e.contains("closes"), "{e}");
    }

    #[test]
    fn lifecycle_validation_accepts_rollbacks() {
        // A reverse lifecycle runs the same stages and closes with
        // `RolledBack`; the validator treats it like any terminal stage.
        let j = Journal::new();
        let u = j.next_update_id();
        j.record(Some(2), u, "v2", "v1", Stage::Enqueued, None, None);
        for stage in Stage::PHASES {
            j.record(
                Some(2),
                u,
                "v2",
                "v1",
                stage,
                Some(Duration::from_micros(5)),
                None,
            );
        }
        j.record(
            Some(2),
            u,
            "v2",
            "v1",
            Stage::RolledBack,
            Some(Duration::from_micros(35)),
            None,
        );
        validate_lifecycle(&j.events_for(u)).unwrap();

        // An aborted rollback is still a valid (abort-ordered) lifecycle.
        let u2 = j.next_update_id();
        j.record(Some(2), u2, "v2", "v1", Stage::Enqueued, None, None);
        j.record(
            Some(2),
            u2,
            "v2",
            "v1",
            Stage::Aborted,
            None,
            Some("no snapshot available"),
        );
        validate_lifecycle(&j.events_for(u2)).unwrap();
    }

    #[test]
    fn lifecycle_validation_enforces_accounting_laws() {
        // Terminal total must equal the phase sum exactly.
        let j = Journal::new();
        let u = j.next_update_id();
        j.record(None, u, "v1", "v2", Stage::Enqueued, None, None);
        j.record(
            None,
            u,
            "v1",
            "v2",
            Stage::Bind,
            Some(Duration::from_micros(10)),
            None,
        );
        j.record(
            None,
            u,
            "v1",
            "v2",
            Stage::Committed,
            Some(Duration::from_micros(11)),
            None,
        );
        let e = validate_lifecycle(&j.events_for(u)).unwrap_err();
        assert!(e.contains("phase sum"), "{e}");

        // A repeated phase means two pauses were folded into one id.
        let u2 = j.next_update_id();
        j.record(None, u2, "v2", "v1", Stage::Enqueued, None, None);
        j.record(None, u2, "v2", "v1", Stage::Drain, None, None);
        j.record(None, u2, "v2", "v1", Stage::Drain, None, None);
        j.record(None, u2, "v2", "v1", Stage::RolledBack, None, None);
        let e = validate_lifecycle(&j.events_for(u2)).unwrap_err();
        assert!(e.contains("more than once"), "{e}");

        // The version transition may not drift mid-lifecycle.
        let u3 = j.next_update_id();
        j.record(None, u3, "v1", "v2", Stage::Enqueued, None, None);
        j.record(None, u3, "v1", "v3", Stage::Committed, None, None);
        let e = validate_lifecycle(&j.events_for(u3)).unwrap_err();
        assert!(e.contains("drifts"), "{e}");

        // A terminal stage anywhere but last is rejected.
        let u4 = j.next_update_id();
        j.record(None, u4, "v1", "v2", Stage::Enqueued, None, None);
        j.record(None, u4, "v1", "v2", Stage::Committed, None, None);
        j.record(None, u4, "v1", "v2", Stage::RolledBack, None, None);
        let e = validate_lifecycle(&j.events_for(u4)).unwrap_err();
        assert!(e.contains("before the last"), "{e}");
    }

    #[test]
    fn spanned_events_carry_the_cross_link() {
        let j = Journal::new();
        let u = j.next_update_id();
        j.record_spanned(
            Some(1),
            u,
            "v1",
            "v2",
            Stage::Enqueued,
            None,
            None,
            Some((7, 42)),
        );
        let e = &j.events_for(u)[0];
        assert_eq!(e.trace, Some(7));
        assert_eq!(e.span, Some(42));
        let line = j.to_jsonl();
        assert!(line.contains("\"trace\":7"), "{line}");
        assert!(line.contains("\"span\":42"), "{line}");
    }

    #[test]
    fn jsonl_round_trips_the_essentials() {
        let j = Journal::new();
        let u = j.next_update_id();
        j.record(
            Some(3),
            u,
            "v1",
            "v2",
            Stage::Aborted,
            None,
            Some("state transformer \"x\" trapped"),
        );
        let jsonl = j.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        let line = jsonl.lines().next().unwrap();
        assert!(line.contains("\"stage\":\"aborted\""), "{line}");
        assert!(line.contains("\"worker\":3"), "{line}");
        assert!(line.contains("\\\"x\\\""), "{line}");
        assert!(line.starts_with('{') && line.ends_with('}'));
    }

    #[test]
    fn clones_share_the_stream() {
        let j = Journal::new();
        let j2 = j.clone();
        full_lifecycle(&j, None);
        assert_eq!(j2.len(), 9);
        assert!(!j2.is_empty());
    }

    #[test]
    fn events_round_trip_through_json() {
        let j = Journal::new();
        let u = j.next_update_id();
        j.record_spanned(
            Some(4),
            u,
            "v1",
            "v2",
            Stage::Transform,
            Some(Duration::from_nanos(12_345)),
            Some("detail with \"quotes\"\nand newline"),
            Some((9, 11)),
        );
        j.record(None, u, "v1", "v2", Stage::Aborted, None, None);
        for e in j.events() {
            let back = Event::from_json(&e.to_json()).unwrap();
            assert_eq!(back, e);
        }
        assert!(Event::from_json("{\"seq\":1}").is_err());
        assert!(Event::from_json("not json").is_err());
    }

    #[test]
    fn wal_persists_and_recovery_continues_the_stream() {
        let path =
            std::env::temp_dir().join(format!("dsu-journal-wal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        // First incarnation: open a lifecycle but crash before closing it.
        let j = Journal::with_wal(&path).unwrap();
        let u = j.next_update_id();
        j.record(Some(0), u, "v1", "v2", Stage::Enqueued, None, None);
        j.record(
            Some(0),
            u,
            "v1",
            "v2",
            Stage::Bind,
            Some(Duration::from_micros(10)),
            None,
        );
        let seq_before = j.events().last().unwrap().seq;
        drop(j); // "crash": in-memory journal gone, file remains

        // Second incarnation recovers the stream and finishes the
        // lifecycle; seq/at/update-id all continue monotonically.
        let r = Journal::recover(&path).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.events_for(u).len(), 2);
        r.record(
            Some(0),
            u,
            "v1",
            "v2",
            Stage::Committed,
            Some(Duration::from_micros(10)),
            None,
        );
        assert!(r.events().last().unwrap().seq > seq_before);
        validate_lifecycle(&r.events_for(u)).unwrap();
        let u2 = r.next_update_id();
        assert!(u2 > u, "update ids continue past the recovered max");

        // The continuation also hit the WAL: recover again from disk and
        // the straddling lifecycle still validates.
        let r2 = Journal::recover(&path).unwrap();
        assert_eq!(r2.len(), 3);
        validate_lifecycle(&r2.events_for(u)).unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
