//! Property-based tests over the core invariants, driven by the
//! workspace's own deterministic PRNG (no external fuzzing framework):
//!
//! * **Verifier soundness (fuzz)** — for arbitrary instruction sequences,
//!   the verifier never panics, and anything it accepts executes without
//!   violating the interpreter's invariants (traps are fine, panics are
//!   not).
//! * **Pretty-printer fixed point** — printing a parsed program is stable,
//!   which is what the patch generator's text-level diffing relies on.
//! * **Patch-generation round trip** — for a generated family of struct
//!   growth changes, the synthesised transformer preserves live state.
//! * **Workload sampler** — Zipf sampling stays in range and is
//!   deterministic in the seed.
//! * **Optimizer soundness** — folding preserves behaviour and
//!   verifiability.
//! * **Text-format round trip** — `parse(emit(m)) == m` for arbitrary
//!   modules.
//! * **Update soak** — long random patch sequences preserve state exactly.
//! * **Rollback chains** — random version chains applied at update points
//!   under traffic walk back any number of hops, restoring each hop's
//!   snapshot state with every journal lifecycle obeying the phase laws.
//!
//! Every test derives each case's generator from a fixed base seed, so
//! failures reproduce by case index.

use flashed::rng::Rng;
use popcorn::ast::{BinOp, Expr, ExprKind, Program, Stmt, StmtKind, TypeAst, UnOp};
use tal::{Field, FnSig, Instr, ModuleBuilder, Ty, TypeDef};
use vm::{LinkMode, Process, Value};

// =========================== verifier fuzz ===========================

/// A positional template for one instruction; jump offsets are made
/// forward-only so accepted programs always terminate (no calls, no
/// backward edges).
#[derive(Debug, Clone)]
struct Tpl {
    opcode: u8,
    operand: u32,
}

fn gen_tpls(rng: &mut Rng, max_len: usize) -> Vec<Tpl> {
    let len = rng.gen_range_usize(1, max_len);
    (0..len)
        .map(|_| Tpl {
            opcode: (rng.next_u64() & 0xFF) as u8,
            operand: (rng.next_u64() & 0xFFFF_FFFF) as u32,
        })
        .collect()
}

fn materialize(i: usize, len: usize, t: &Tpl, tr: tal::TypeRefId, s: tal::StrId) -> Instr {
    let fwd = |op: u32| -> u32 {
        let remaining = (len - i - 1).max(1);
        (i + 1 + (op as usize % remaining)).min(len - 1) as u32
    };
    match t.opcode % 36 {
        0 => Instr::PushInt(i64::from(t.operand % 100)),
        1 => Instr::PushBool(t.operand.is_multiple_of(2)),
        2 => Instr::PushStr(s),
        3 => Instr::PushUnit,
        4 => Instr::PushNull(tr),
        5 => Instr::LoadLocal((t.operand % 4) as u16),
        6 => Instr::StoreLocal((t.operand % 4) as u16),
        7 => Instr::Dup,
        8 => Instr::Pop,
        9 => Instr::Swap,
        10 => Instr::Add,
        11 => Instr::Sub,
        12 => Instr::Mul,
        13 => Instr::Div,
        14 => Instr::Rem,
        15 => Instr::Neg,
        16 => Instr::Eq,
        17 => Instr::Lt,
        18 => Instr::Ge,
        19 => Instr::And,
        20 => Instr::Not,
        21 => Instr::Concat,
        22 => Instr::StrLen,
        23 => Instr::Substr,
        24 => Instr::CharAt,
        25 => Instr::StrEq,
        26 => Instr::StrFind,
        27 => Instr::IntToStr,
        28 => Instr::StrToInt,
        29 => Instr::Jump(fwd(t.operand)),
        30 => Instr::JumpIfFalse(fwd(t.operand)),
        31 => Instr::NewRecord(tr),
        32 => Instr::GetField(tr, (t.operand % 2) as u16),
        33 => Instr::IsNull(tr),
        34 => Instr::NewArray(Ty::Int),
        35 => Instr::Ret,
        _ => unreachable!(),
    }
}

fn fuzz_module(tpls: &[Tpl]) -> tal::Module {
    let mut b = ModuleBuilder::new("fuzz", "v1");
    b.def_type(TypeDef::new(
        "t",
        vec![Field::new("a", Ty::Int), Field::new("b", Ty::Str)],
    ));
    let tr = b.type_ref("t");
    let s = b.string("seed");
    let len = tpls.len() + 1;
    b.function("f", FnSig::new(vec![], Ty::Int), |f| {
        f.local(Ty::Int); // local 0
        f.local(Ty::Bool); // local 1
        f.local(Ty::Str); // local 2
        f.local(Ty::named("t")); // local 3
        for (i, t) in tpls.iter().enumerate() {
            f.emit(materialize(i, len, t, tr, s));
        }
        f.emit(Instr::Ret);
    });
    b.finish()
}

/// The verifier must never panic, and verified code must never panic
/// the interpreter (C-like traps are allowed).
#[test]
fn verifier_soundness_fuzz() {
    for case in 0..512u64 {
        let mut rng = Rng::seed_from_u64(0xF00D ^ case);
        let tpls = gen_tpls(&mut rng, 47);
        let m = fuzz_module(&tpls);
        if tal::verify_module(&m, &tal::NoAmbientTypes).is_ok() {
            let mut p = Process::new(LinkMode::Static);
            p.load_module(&m).expect("verified modules link");
            // Must not panic; trapping is allowed.
            let _ = p.call("f", vec![]);
        }
    }
}

/// Accepted-and-executed fraction sanity: straight-line integer code
/// always verifies and runs.
#[test]
fn straightline_int_code_verifies() {
    for case in 0..512u64 {
        let mut rng = Rng::seed_from_u64(0xBEEF ^ case);
        let n = rng.gen_range_usize(1, 19);
        let vals: Vec<i64> = (0..n).map(|_| rng.gen_range_i64(0, 99)).collect();
        let mut b = ModuleBuilder::new("sl", "v1");
        b.function("f", FnSig::new(vec![], Ty::Int), |f| {
            f.emit(Instr::PushInt(0));
            for v in &vals {
                f.emit(Instr::PushInt(*v));
                f.emit(Instr::Add);
            }
            f.emit(Instr::Ret);
        });
        let m = b.finish();
        tal::verify_module(&m, &tal::NoAmbientTypes).expect("verifies");
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&m).unwrap();
        let expect: i64 = vals.iter().sum();
        assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(expect));
    }
}

// ======================= pretty-printer fixed point =======================

fn gen_ident(rng: &mut Rng) -> String {
    let len = rng.gen_range_usize(1, 6);
    let s: String = (0..len)
        .map(|_| (b'a' + (rng.next_u64() % 26) as u8) as char)
        .collect();
    format!("v_{s}")
}

fn gen_type_ast(rng: &mut Rng, depth: usize) -> TypeAst {
    match rng.gen_range_usize(0, if depth == 0 { 4 } else { 6 }) {
        0 => TypeAst::Int,
        1 => TypeAst::Bool,
        2 => TypeAst::Str,
        3 => TypeAst::Unit,
        4 if depth > 0 => TypeAst::Array(Box::new(gen_type_ast(rng, depth - 1))),
        5 if depth > 0 => {
            let nparams = rng.gen_range_usize(0, 2);
            let params = (0..nparams).map(|_| gen_type_ast(rng, depth - 1)).collect();
            TypeAst::Fn(params, Box::new(gen_type_ast(rng, depth - 1)))
        }
        _ => TypeAst::Named(gen_ident(rng)),
    }
}

fn gen_literal_string(rng: &mut Rng) -> String {
    const CHARSET: &[u8] = b"abcXYZ019 _.:/-";
    let len = rng.gen_range_usize(0, 12);
    (0..len).map(|_| *rng.choose(CHARSET) as char).collect()
}

fn gen_expr(rng: &mut Rng, depth: usize) -> Expr {
    let e = |kind| Expr { line: 0, kind };
    if depth == 0 {
        return match rng.gen_range_usize(0, 6) {
            0 => e(ExprKind::Int(rng.gen_range_i64(0, 999_999))),
            1 => e(ExprKind::Str(gen_literal_string(rng))),
            2 => e(ExprKind::Bool(rng.gen_bool())),
            3 => e(ExprKind::Null),
            4 => e(ExprKind::Var(gen_ident(rng))),
            5 => e(ExprKind::FnRef(gen_ident(rng))),
            _ => e(ExprKind::NewArray(gen_type_ast(rng, 1))),
        };
    }
    match rng.gen_range_usize(0, 7) {
        0 => {
            let op = if rng.gen_bool() { UnOp::Neg } else { UnOp::Not };
            e(ExprKind::Unary(op, Box::new(gen_expr(rng, depth - 1))))
        }
        1 => {
            let op = *rng.choose(&[
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Rem,
                BinOp::Eq,
                BinOp::Ne,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
                BinOp::And,
                BinOp::Or,
            ]);
            e(ExprKind::Binary(
                op,
                Box::new(gen_expr(rng, depth - 1)),
                Box::new(gen_expr(rng, depth - 1)),
            ))
        }
        2 => {
            let nargs = rng.gen_range_usize(0, 2);
            let args = (0..nargs).map(|_| gen_expr(rng, depth - 1)).collect();
            e(ExprKind::Call(
                Box::new(e(ExprKind::Var(gen_ident(rng)))),
                args,
            ))
        }
        3 => e(ExprKind::Field(
            Box::new(gen_expr(rng, depth - 1)),
            gen_ident(rng),
        )),
        4 => e(ExprKind::Index(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        )),
        5 => {
            let nfields = rng.gen_range_usize(0, 2);
            let fields = (0..nfields)
                .map(|_| (gen_ident(rng), gen_expr(rng, depth - 1)))
                .collect();
            e(ExprKind::Record(gen_ident(rng), fields))
        }
        _ => {
            let nelems = rng.gen_range_usize(1, 2);
            let elems = (0..nelems).map(|_| gen_expr(rng, depth - 1)).collect();
            e(ExprKind::ArrayLit(elems))
        }
    }
}

fn gen_stmt(rng: &mut Rng, depth: usize) -> Stmt {
    let s = |kind| Stmt { line: 0, kind };
    let leaf_choices = 8;
    let choice = rng.gen_range_usize(
        0,
        if depth == 0 {
            leaf_choices - 1
        } else {
            leaf_choices + 1
        },
    );
    match choice {
        0 => s(StmtKind::Var {
            name: gen_ident(rng),
            ty: gen_type_ast(rng, 2),
            init: gen_expr(rng, 2),
        }),
        1 => s(StmtKind::Assign {
            target: Expr {
                line: 0,
                kind: ExprKind::Var(gen_ident(rng)),
            },
            value: gen_expr(rng, 2),
        }),
        2 => s(StmtKind::Return(Some(gen_expr(rng, 2)))),
        3 => s(StmtKind::Return(None)),
        4 => s(StmtKind::Update),
        5 => s(StmtKind::Break),
        6 => s(StmtKind::Continue),
        7 => s(StmtKind::Expr(gen_expr(rng, 2))),
        8 => {
            let nthen = rng.gen_range_usize(0, 2);
            let nels = rng.gen_range_usize(0, 1);
            s(StmtKind::If {
                cond: gen_expr(rng, 2),
                then: (0..nthen).map(|_| gen_stmt(rng, depth - 1)).collect(),
                els: (0..nels).map(|_| gen_stmt(rng, depth - 1)).collect(),
            })
        }
        _ => {
            let nbody = rng.gen_range_usize(0, 2);
            s(StmtKind::While {
                cond: gen_expr(rng, 2),
                body: (0..nbody).map(|_| gen_stmt(rng, depth - 1)).collect(),
            })
        }
    }
}

fn gen_program(rng: &mut Rng) -> Program {
    let mut items = Vec::new();
    for _ in 0..rng.gen_range_usize(0, 1) {
        let nfields = rng.gen_range_usize(0, 3);
        items.push(popcorn::ast::Item::Struct(popcorn::ast::StructDef {
            name: gen_ident(rng),
            fields: (0..nfields)
                .map(|_| (gen_ident(rng), gen_type_ast(rng, 2)))
                .collect(),
            line: 0,
        }));
    }
    for _ in 0..rng.gen_range_usize(0, 2) {
        let nparams = rng.gen_range_usize(0, 2);
        let nstmts = rng.gen_range_usize(0, 4);
        items.push(popcorn::ast::Item::Fun(popcorn::ast::FunDef {
            name: gen_ident(rng),
            params: (0..nparams)
                .map(|_| (gen_ident(rng), gen_type_ast(rng, 2)))
                .collect(),
            ret: gen_type_ast(rng, 2),
            body: (0..nstmts).map(|_| gen_stmt(rng, 2)).collect(),
            line: 0,
        }));
    }
    Program { items }
}

/// pretty ∘ parse is a fixed point of pretty — the canonical-form
/// assumption the patch generator's diff relies on.
#[test]
fn pretty_print_is_a_fixed_point() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0xCAFE ^ case);
        let p = gen_program(&mut rng);
        let text1 = popcorn::pretty::program(&p);
        let reparsed = popcorn::parse(&text1)
            .unwrap_or_else(|e| panic!("pretty output must parse: {e}\n---\n{text1}"));
        let text2 = popcorn::pretty::program(&reparsed);
        assert_eq!(text1, text2);
    }
}

// ===================== patch generation round trip =====================

/// For a generated family of struct-growth changes, the synthesised
/// state transformer preserves all carried fields over any live
/// population.
#[test]
fn patchgen_struct_growth_preserves_state() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0xD1CE ^ case);
        let n = rng.gen_range_usize(0, 39);
        let nextra = rng.gen_range_usize(1, 3);
        let mut seen = std::collections::BTreeSet::new();
        let extras: Vec<(String, &str)> = (0..nextra)
            .map(|_| {
                let name: String = {
                    let len = rng.gen_range_usize(1, 5);
                    (0..len)
                        .map(|_| (b'a' + (rng.next_u64() % 26) as u8) as char)
                        .collect()
                };
                let ty = *rng.choose(&["int", "bool", "string"]);
                (format!("f_{name}"), ty)
            })
            .filter(|(name, _)| seen.insert(name.clone()))
            .collect();

        let v1 = r#"
            struct rec { id: int }
            global data: [rec] = new [rec];
            fun fill(n: int): int {
                var i: int = 0;
                while (i < n) { push(data, rec { id: i * 3 }); i = i + 1; }
                return len(data);
            }
            fun sum(): int {
                var s: int = 0;
                var i: int = 0;
                while (i < len(data)) { s = s + data[i].id; i = i + 1; }
                return s;
            }
        "#;
        let extra_decls: Vec<String> = extras.iter().map(|(n, t)| format!("{n}: {t}")).collect();
        let extra_inits: Vec<String> = extras
            .iter()
            .map(|(n, t)| {
                let d = match *t {
                    "int" => "0",
                    "bool" => "false",
                    _ => "\"\"",
                };
                format!("{n}: {d}")
            })
            .collect();
        let v2 = format!(
            r#"
            struct rec {{ id: int, {decls} }}
            global data: [rec] = new [rec];
            fun fill(n: int): int {{
                var i: int = 0;
                while (i < n) {{ push(data, rec {{ id: i * 3, {inits} }}); i = i + 1; }}
                return len(data);
            }}
            fun sum(): int {{
                var s: int = 0;
                var i: int = 0;
                while (i < len(data)) {{ s = s + data[i].id; i = i + 1; }}
                return s;
            }}
            "#,
            decls = extra_decls.join(", "),
            inits = extra_inits.join(", "),
        );

        let gen = dsu_core::PatchGen::new()
            .generate(v1, &v2, "v1", "v2")
            .unwrap();
        assert_eq!(gen.stats.types_changed, 1);
        assert_eq!(gen.stats.transformers_auto, 1);

        let m = popcorn::compile(v1, "app", "v1", &popcorn::Interface::new()).unwrap();
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&m).unwrap();
        p.call("fill", vec![Value::Int(n as i64)]).unwrap();
        let before = p.call("sum", vec![]).unwrap();
        dsu_core::apply_patch(&mut p, &gen.patch, dsu_core::UpdatePolicy::default()).unwrap();
        assert_eq!(p.call("sum", vec![]).unwrap(), before);
    }
}

// ============================ workload sampler ============================

#[test]
fn zipf_samples_in_range_and_deterministic() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0x21BF ^ case);
        let n = rng.gen_range_usize(1, 199);
        let alpha = rng.gen_f64() * 2.0;
        let seed = rng.next_u64();
        let z = flashed::Zipf::new(n, alpha);
        let mut r1 = Rng::seed_from_u64(seed);
        let mut r2 = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            let a = z.sample(&mut r1);
            let b = z.sample(&mut r2);
            assert!(a < n);
            assert_eq!(a, b);
        }
    }
}

// =========================== optimizer soundness ===========================

/// Folding random integer expression chains preserves the result.
#[test]
fn optimizer_preserves_straightline_arithmetic() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x0911 ^ case);
        let nops = rng.gen_range_usize(1, 23);
        let ops: Vec<(u8, i64)> = (0..nops)
            .map(|_| ((rng.next_u64() % 6) as u8, rng.gen_range_i64(1, 49)))
            .collect();
        let start = rng.gen_range_i64(0, 999);
        let mut b = ModuleBuilder::new("o", "v1");
        b.function("f", FnSig::new(vec![], Ty::Int), |f| {
            f.emit(Instr::PushInt(start));
            for (op, v) in &ops {
                f.emit(Instr::PushInt(*v));
                f.emit(match op % 6 {
                    0 => Instr::Add,
                    1 => Instr::Sub,
                    2 => Instr::Mul,
                    3 => Instr::Div,
                    4 => Instr::Rem,
                    _ => Instr::Add,
                });
            }
            f.emit(Instr::Ret);
        });
        let plain = b.finish();
        let mut opt = plain.clone();
        let stats = tal::opt::optimize_module(&mut opt);
        tal::verify_module(&opt, &tal::NoAmbientTypes).expect("optimised verifies");
        // Everything here is constant, so the whole chain must fold away.
        assert!(opt.function("f").unwrap().code.len() <= 2, "{stats:?}");

        let mut p1 = Process::new(LinkMode::Static);
        p1.load_module(&plain).unwrap();
        let mut p2 = Process::new(LinkMode::Static);
        p2.load_module(&opt).unwrap();
        assert_eq!(p1.call("f", vec![]).unwrap(), p2.call("f", vec![]).unwrap());
    }
}

/// The optimizer never breaks verification or changes behaviour on
/// arbitrary *verified* fuzz programs.
#[test]
fn optimizer_sound_on_fuzzed_verified_code() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x5EED ^ case);
        let tpls = gen_tpls(&mut rng, 47);
        let plain = fuzz_module(&tpls);
        if tal::verify_module(&plain, &tal::NoAmbientTypes).is_ok() {
            let mut opt = plain.clone();
            tal::opt::optimize_module(&mut opt);
            tal::verify_module(&opt, &tal::NoAmbientTypes)
                .expect("optimisation must preserve verifiability");
            let mut p1 = Process::new(LinkMode::Static);
            p1.load_module(&plain).unwrap();
            let mut p2 = Process::new(LinkMode::Static);
            p2.load_module(&opt).unwrap();
            let r1 = p1.call("f", vec![]);
            let r2 = p2.call("f", vec![]);
            assert_eq!(r1, r2, "optimised behaviour diverged");
        }
    }
}

// ======================= text format round trip =======================

/// `tal::text::parse(emit(m)) == m` for arbitrary (even ill-typed)
/// modules built from the fuzz instruction pool — the format is a
/// faithful carrier, independent of verification.
#[test]
fn tal_text_round_trips_fuzzed_modules() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x7E87 ^ case);
        let tpls = gen_tpls(&mut rng, 39);
        let mut b = ModuleBuilder::new("fz", "v9");
        b.def_type(TypeDef::new(
            "t",
            vec![Field::new("a", Ty::Int), Field::new("b", Ty::Str)],
        ));
        let tr = b.type_ref("t");
        let s = b.string("seed \"quoted\"\n");
        let len = tpls.len() + 1;
        b.function("f", FnSig::new(vec![Ty::Int], Ty::Int), |f| {
            f.local(Ty::array(Ty::named("t")));
            for (i, t) in tpls.iter().enumerate() {
                f.emit(materialize(i, len, t, tr, s));
            }
            f.emit(Instr::Ret);
        });
        b.global("g", Ty::Str, vec![Instr::PushStr(s), Instr::Ret]);
        let m = b.finish();
        let text = tal::text::emit(&m);
        let back = tal::text::parse(&text)
            .unwrap_or_else(|e| panic!("emit output must parse: {e}\n---\n{text}"));
        assert_eq!(m, back);
    }
}

// ============================ update soak ============================

/// Soak: a long random sequence of generated patches (body tweaks and
/// struct growth) applied to one process; after every patch the
/// process must agree with a freshly booted build of the same source.
#[test]
fn soak_many_sequential_patches() {
    for case in 0..12u64 {
        let mut rng = Rng::seed_from_u64(0x50AC ^ case);
        let ndeltas = rng.gen_range_usize(4, 11);
        let deltas: Vec<(i64, bool)> = (0..ndeltas)
            .map(|_| (rng.gen_range_i64(1, 49), rng.gen_bool()))
            .collect();

        let mk_src = |mult: i64, fields: usize| -> String {
            let extra_decl: Vec<String> = (0..fields).map(|i| format!("x{i}: int")).collect();
            let extra_init: Vec<String> = (0..fields).map(|i| format!("x{i}: {i}")).collect();
            let comma = if fields > 0 { ", " } else { "" };
            format!(
                r#"
                struct rec {{ id: int{comma}{decls} }}
                global data: [rec] = new [rec];
                fun add(n: int): unit {{ push(data, rec {{ id: n * {mult}{comma}{inits} }}); }}
                fun sum(): int {{
                    var s: int = 0;
                    var i: int = 0;
                    while (i < len(data)) {{ s = s + data[i].id; i = i + 1; }}
                    return s;
                }}
                "#,
                decls = extra_decl.join(", "),
                inits = extra_init.join(", "),
            )
        };

        let mut mult = 1i64;
        let mut fields = 0usize;
        let mut src = mk_src(mult, fields);
        let mut proc = {
            let m = popcorn::compile(&src, "soak", "v1", &popcorn::Interface::new()).unwrap();
            let mut p = Process::new(LinkMode::Updateable);
            p.load_module(&m).unwrap();
            p
        };
        let mut expected_sum = 0i64;
        let mut n = 0i64;

        for (i, (new_mult, grow)) in deltas.iter().enumerate() {
            // Mutate state on the current version.
            n += 1;
            proc.call("add", vec![Value::Int(n)]).unwrap();
            expected_sum += n * mult;

            // Generate and apply the next patch.
            mult = *new_mult;
            if *grow {
                fields += 1;
            }
            let next = mk_src(mult, fields);
            let gen = dsu_core::PatchGen::new()
                .generate(&src, &next, &format!("v{i}"), &format!("v{}", i + 1))
                .unwrap();
            dsu_core::apply_patch(&mut proc, &gen.patch, dsu_core::UpdatePolicy::default())
                .unwrap();
            src = next;

            // State must be exactly preserved across every patch.
            assert_eq!(proc.call("sum", vec![]).unwrap(), Value::Int(expected_sum));
        }
        // Post-soak sanity: new adds use the final multiplier.
        proc.call("add", vec![Value::Int(100)]).unwrap();
        expected_sum += 100 * mult;
        assert_eq!(proc.call("sum", vec![]).unwrap(), Value::Int(expected_sum));
        // And old code versions can be garbage collected without harm.
        proc.collect_code();
        assert_eq!(proc.call("sum", vec![]).unwrap(), Value::Int(expected_sum));
    }
}

// ========================== rollback chains ==========================

/// Random version chains, forward then backward: apply `k` generated
/// updates (multiplier tweaks, struct growth) at update points while
/// traffic keeps mutating state, then walk the snapshot-ring rollback
/// chain back `j ≤ k` hops — still under traffic. After every hop the
/// guest answers with the restored version's semantics and the expected
/// state: snapshots share untransformed guest values (`Rc` cells), so a
/// code-only hop's restore keeps all traffic served since, while a hop
/// whose forward transformer rebuilt a global rewinds it to its
/// apply-instant contents. Every journal lifecycle (forward and
/// backward) passes the phase-sum validator at every hop.
#[test]
fn rollback_chains_restore_every_version_under_traffic() {
    use dsu_obs::journal::validate_lifecycle;
    use dsu_obs::Journal;

    let mk_src = |mult: i64, fields: usize| -> String {
        let extra_decl: Vec<String> = (0..fields).map(|i| format!("x{i}: int")).collect();
        let extra_init: Vec<String> = (0..fields).map(|i| format!("x{i}: {i}")).collect();
        let comma = if fields > 0 { ", " } else { "" };
        format!(
            r#"
            struct rec {{ id: int{comma}{decls} }}
            global data: [rec] = new [rec];
            fun add(n: int): unit {{ push(data, rec {{ id: n * {mult}{comma}{inits} }}); }}
            fun mult_tag(): int {{ return {mult}; }}
            fun sum(): int {{
                var s: int = 0;
                var i: int = 0;
                while (i < len(data)) {{ s = s + data[i].id; i = i + 1; }}
                return s;
            }}
            fun pump(k: int): int {{
                var i: int = 0;
                while (i < k) {{ add(i + 1); update; i = i + 1; }}
                return sum();
            }}
            "#,
            decls = extra_decl.join(", "),
            inits = extra_init.join(", "),
        )
    };

    for case in 0..10u64 {
        let mut rng = Rng::seed_from_u64(0xC4A1 ^ case);
        let k = rng.gen_range_usize(2, 4); // forward hops (ring depth is 4)
        let mults: Vec<i64> = std::iter::once(1)
            .chain((0..k).map(|_| rng.gen_range_i64(2, 49)))
            .collect();
        let mut fields = vec![0usize];
        for _ in 0..k {
            fields.push(fields.last().unwrap() + usize::from(rng.gen_bool()));
        }

        let journal = Journal::new();
        let src = mk_src(mults[0], fields[0]);
        let m = popcorn::compile(&src, "chain", "v1", &popcorn::Interface::new()).unwrap();
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&m).unwrap();
        let mut up = dsu_core::Updater::new();
        up.set_journal(journal.clone(), Some(case as usize));

        // Forward: k updates, each landing at the first update point of a
        // pump run, with more traffic after it in the same run. The
        // snapshot each hop restores is the state at its apply instant.
        let mut sum = 0i64;
        let mut prev_src = src;
        let mut snap_sums = vec![0i64]; // snap_sums[i]: state the hop onto v(i+2) restores
        for step in 0..k {
            let t = rng.gen_range_usize(2, 4) as i64;
            let gen = dsu_core::PatchGen::new()
                .generate(
                    &prev_src,
                    &mk_src(mults[step + 1], fields[step + 1]),
                    &format!("v{}", step + 1),
                    &format!("v{}", step + 2),
                )
                .unwrap();
            up.enqueue(&mut p, gen.patch);
            let got = up.run(&mut p, "pump", vec![Value::Int(t)]).unwrap();
            // First iteration runs the old version's add, then the patch
            // applies at the update point; the rest run the new version.
            sum += mults[step];
            snap_sums.push(sum);
            for r in 2..=t {
                sum += r * mults[step + 1];
            }
            assert_eq!(got, Value::Int(sum), "case {case} forward step {step}");
            prev_src = mk_src(mults[step + 1], fields[step + 1]);
        }
        assert_eq!(up.snapshot_transitions().len(), k);

        // Backward: j ≤ k single hops, each applied at an update point of
        // a pump run that serves one more request first.
        let j = rng.gen_range_usize(1, k);
        for hop in 0..j {
            let at = k - hop; // walking v(at+1) -> v(at)
            assert_eq!(up.enqueue_rollback_chain(&mut p, 1), 1);
            let got = up.run(&mut p, "pump", vec![Value::Int(1)]).unwrap();
            // The pump's own add lands before the restore, on the
            // not-yet-rolled-back version.
            sum += mults[at];
            if fields[at] > fields[at - 1] {
                // The forward transformer rebuilt `data`; this restore
                // rewinds it to its contents at that apply instant.
                sum = snap_sums[at];
            }
            let expect = sum;
            assert_eq!(got, Value::Int(expect), "case {case} hop {hop}");
            assert_eq!(p.call("sum", vec![]).unwrap(), Value::Int(expect));
            // The guest answers with the restored version's semantics.
            assert_eq!(
                p.call("mult_tag", vec![]).unwrap(),
                Value::Int(mults[at - 1])
            );
            assert_eq!(up.snapshot_transitions().len(), at - 1);
            // Phase-sum laws hold for every lifecycle at every hop.
            for id in journal.update_ids() {
                validate_lifecycle(&journal.events_for(id)).unwrap();
            }
        }

        // The process keeps serving traffic on whatever version it landed.
        let t = 3i64;
        let got = up.run(&mut p, "pump", vec![Value::Int(t)]).unwrap();
        for r in 1..=t {
            sum += r * mults[k - j];
        }
        assert_eq!(got, Value::Int(sum));
    }
}

// ====================== supervised faulted walks ======================

/// Random k-forward / j-back walks of the FlashEd patch stream on a
/// supervised fleet, with crash and read-error faults injected at random
/// points: a rolling rollout per forward hop (crashes kill the victim's
/// thread for real — the supervisor reboots it from its persisted ring
/// and the driver re-drives the hop), then per-worker rollback-chain
/// hops back, re-driven across any restarts. Surviving workers must
/// converge on the scheduled version after every hop, every pushed
/// request must complete, and every journal lifecycle — forward,
/// backward, aborted-by-crash, re-driven — must obey the phase laws.
#[test]
fn faulted_walks_converge_under_supervision() {
    use dsu_obs::journal::validate_lifecycle;
    use dsu_obs::Journal;
    use flashed::{
        patch_stream, versions, CrashPoint, FaultPlan, Fleet, FleetConfig, RolloutPolicy, SimFs,
        SupervisorConfig, Workload,
    };
    use std::time::{Duration, Instant};

    const WORKERS: usize = 3;
    let fs = SimFs::generate_fixed(16, 256, 7);
    let stream = patch_stream().unwrap();
    let crash_points = [
        CrashPoint::MidPause,
        CrashPoint::MidTransform,
        CrashPoint::MidSoak,
        CrashPoint::Serving,
    ];

    for case in 0..4u64 {
        let mut rng = Rng::seed_from_u64(0xFA17 ^ case);
        let mut wl = Workload::new(fs.paths(), 1.0, 61 + case);
        let journal = Journal::new();
        // A generous restart budget: this test proves convergence under
        // repeated injury, not the give-up path.
        let cfg = FleetConfig::new(WORKERS)
            .with_journal(journal.clone())
            .with_supervision(SupervisorConfig {
                max_restarts: 32,
                ..SupervisorConfig::default()
            });
        let fleet = Fleet::start_cfg(&cfg, &versions::v1(), "v1", &fs).unwrap();
        let mut pushed = 0usize;

        // Forward: k hops of the real patch stream, each a rolling
        // rollout, with a coin-flipped crash and/or read-error fault
        // armed on a random worker beforehand.
        let k = rng.gen_range_usize(2, stream.len());
        for (step, entry) in stream.iter().enumerate().take(k) {
            if rng.gen_bool() {
                let victim = rng.gen_range_usize(0, WORKERS - 1);
                fleet.inject_worker_fault(
                    victim,
                    FaultPlan {
                        crash_at: Some(*rng.choose(&crash_points)),
                        ..FaultPlan::default()
                    },
                );
            }
            let reader = rng.gen_bool().then(|| {
                let victim = rng.gen_range_usize(0, WORKERS - 1);
                fleet.set_worker_read_failures(victim, true);
                victim
            });
            fleet.push_requests(wl.batch(30));
            pushed += 30;
            fleet
                .rollout(&entry.patch, RolloutPolicy::Rolling)
                .unwrap();
            if let Some(victim) = reader {
                fleet.set_worker_read_failures(victim, false);
            }
            let target = format!("v{}", step + 2);
            assert!(
                fleet.live_versions().iter().all(|v| *v == target),
                "case {case} forward step {step}: {:?}\nrestarts: {:?}\nstate: {:?}",
                fleet.live_versions(),
                fleet.restart_reports(),
                (0..WORKERS)
                    .map(|w| {
                        let r = fleet.remote(w);
                        (
                            w,
                            fleet.worker_epoch(w),
                            r.applied_count(),
                            r.failure_count(),
                            r.pending_count(),
                            r.reports().last().map(|x| x.to_version.clone()),
                        )
                    })
                    .collect::<Vec<_>>()
            );
        }

        // Backward: j ≤ k hops per worker through its snapshot-ring
        // rollback chain, one hop at a time, re-driven until it lands.
        // A hop interrupted by a crash (armed above but fired late, or a
        // replayed incarnation's own pause) is withdrawn by the
        // supervisor; the loop re-checks the live version and enqueues
        // again, exactly like the forward driver's re-drive.
        let j = rng.gen_range_usize(1, k);
        let target = format!("v{}", k + 1 - j);
        fleet.push_requests(wl.batch(30));
        pushed += 30;
        let deadline = Instant::now() + Duration::from_secs(30);
        for w in 0..WORKERS {
            loop {
                let cur = fleet.live_versions()[w].clone();
                if cur == target {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "case {case}: worker {w} never reached {target}: {:?}",
                    fleet.live_versions()
                );
                let epoch0 = fleet.worker_epoch(w);
                let remote = fleet.remote(w);
                if remote.pending_count() == 0 && remote.enqueue_rollback_chain(1) == 1 {
                    // The worker pops an op off its queue before applying
                    // it, so a zero pending count does not mean the last
                    // hop's report is visible yet. Wait for this hop to
                    // publish (the version moves) — or for a seat swap to
                    // eat it — before considering another; enqueueing off
                    // a stale version reading walks the ring past the
                    // target.
                    while fleet.live_versions()[w] == cur
                        && fleet.worker_epoch(w) == epoch0
                        && Instant::now() < deadline
                    {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    if fleet.worker_epoch(w) != epoch0 {
                        // The seat was swapped under the enqueue: defuse
                        // the handle we used so the hop cannot dangle on a
                        // dead incarnation, then re-drive on the fresh
                        // seat.
                        remote.cancel_pending("rollback re-driven after restart");
                    }
                } else {
                    // Ring momentarily empty (a restarted incarnation
                    // mid-restore) or a hop still in flight — retry.
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
        }

        // Quiesce: disarm any fault that never fired, wait for every
        // worker to be up with nothing pending, then judge the walk.
        for w in 0..WORKERS {
            fleet.inject_worker_fault(w, FaultPlan::none());
        }
        let settle = Instant::now() + Duration::from_secs(30);
        while !(0..WORKERS).all(|w| fleet.worker_up(w) && fleet.remote(w).pending_count() == 0) {
            assert!(Instant::now() < settle, "case {case}: fleet never settled");
            std::thread::sleep(Duration::from_micros(500));
        }
        assert!(
            fleet.live_versions().iter().all(|v| *v == target),
            "case {case}: {:?} != {target}",
            fleet.live_versions()
        );

        // Every pushed request completes — served, error-answered, or
        // picked up by a restarted incarnation — never lost.
        fleet.drain(pushed).unwrap();
        assert_eq!(fleet.completions().len(), pushed);

        // Zero lifecycle gaps across the whole faulted walk.
        assert!(!journal.update_ids().is_empty());
        for id in journal.update_ids() {
            validate_lifecycle(&journal.events_for(id)).unwrap();
        }
        fleet.shutdown().unwrap();
    }
}
