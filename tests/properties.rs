//! Property-based tests over the core invariants:
//!
//! * **Verifier soundness (fuzz)** — for arbitrary instruction sequences,
//!   the verifier never panics, and anything it accepts executes without
//!   violating the interpreter's invariants (traps are fine, panics are
//!   not).
//! * **Pretty-printer fixed point** — printing a parsed program is stable,
//!   which is what the patch generator's text-level diffing relies on.
//! * **Patch-generation round trip** — for a generated family of struct
//!   growth changes, the synthesised transformer preserves live state.
//! * **Workload sampler** — Zipf sampling stays in range and is
//!   deterministic in the seed.

use proptest::prelude::*;

use popcorn::ast::{BinOp, Expr, ExprKind, Program, Stmt, StmtKind, TypeAst, UnOp};
use tal::{Field, FnSig, Instr, ModuleBuilder, Ty, TypeDef};
use vm::{LinkMode, Process, Value};

// =========================== verifier fuzz ===========================

/// A positional template for one instruction; jump offsets are made
/// forward-only so accepted programs always terminate (no calls, no
/// backward edges).
#[derive(Debug, Clone)]
struct Tpl {
    opcode: u8,
    operand: u32,
}

fn tpl() -> impl Strategy<Value = Tpl> {
    (any::<u8>(), any::<u32>()).prop_map(|(opcode, operand)| Tpl { opcode, operand })
}

fn materialize(i: usize, len: usize, t: &Tpl, tr: tal::TypeRefId, s: tal::StrId) -> Instr {
    let fwd = |op: u32| -> u32 {
        let remaining = (len - i - 1).max(1);
        (i + 1 + (op as usize % remaining)).min(len - 1) as u32
    };
    match t.opcode % 36 {
        0 => Instr::PushInt(i64::from(t.operand % 100)),
        1 => Instr::PushBool(t.operand.is_multiple_of(2)),
        2 => Instr::PushStr(s),
        3 => Instr::PushUnit,
        4 => Instr::PushNull(tr),
        5 => Instr::LoadLocal((t.operand % 4) as u16),
        6 => Instr::StoreLocal((t.operand % 4) as u16),
        7 => Instr::Dup,
        8 => Instr::Pop,
        9 => Instr::Swap,
        10 => Instr::Add,
        11 => Instr::Sub,
        12 => Instr::Mul,
        13 => Instr::Div,
        14 => Instr::Rem,
        15 => Instr::Neg,
        16 => Instr::Eq,
        17 => Instr::Lt,
        18 => Instr::Ge,
        19 => Instr::And,
        20 => Instr::Not,
        21 => Instr::Concat,
        22 => Instr::StrLen,
        23 => Instr::Substr,
        24 => Instr::CharAt,
        25 => Instr::StrEq,
        26 => Instr::StrFind,
        27 => Instr::IntToStr,
        28 => Instr::StrToInt,
        29 => Instr::Jump(fwd(t.operand)),
        30 => Instr::JumpIfFalse(fwd(t.operand)),
        31 => Instr::NewRecord(tr),
        32 => Instr::GetField(tr, (t.operand % 2) as u16),
        33 => Instr::IsNull(tr),
        34 => Instr::NewArray(Ty::Int),
        35 => Instr::Ret,
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The verifier must never panic, and verified code must never panic
    /// the interpreter (C-like traps are allowed).
    #[test]
    fn verifier_soundness_fuzz(tpls in prop::collection::vec(tpl(), 1..48)) {
        let mut b = ModuleBuilder::new("fuzz", "v1");
        b.def_type(TypeDef::new(
            "t",
            vec![Field::new("a", Ty::Int), Field::new("b", Ty::Str)],
        ));
        let tr = b.type_ref("t");
        let s = b.string("seed");
        let len = tpls.len() + 1;
        b.function("f", FnSig::new(vec![], Ty::Int), |f| {
            f.local(Ty::Int);     // local 0
            f.local(Ty::Bool);    // local 1
            f.local(Ty::Str);     // local 2
            f.local(Ty::named("t")); // local 3
            for (i, t) in tpls.iter().enumerate() {
                f.emit(materialize(i, len, t, tr, s));
            }
            f.emit(Instr::Ret);
        });
        let m = b.finish();
        if tal::verify_module(&m, &tal::NoAmbientTypes).is_ok() {
            let mut p = Process::new(LinkMode::Static);
            p.load_module(&m).expect("verified modules link");
            // Must not panic; trapping is allowed.
            let _ = p.call("f", vec![]);
        }
    }

    /// Accepted-and-executed fraction sanity: straight-line integer code
    /// always verifies and runs.
    #[test]
    fn straightline_int_code_verifies(vals in prop::collection::vec(0i64..100, 1..20)) {
        let mut b = ModuleBuilder::new("sl", "v1");
        b.function("f", FnSig::new(vec![], Ty::Int), |f| {
            f.emit(Instr::PushInt(0));
            for v in &vals {
                f.emit(Instr::PushInt(*v));
                f.emit(Instr::Add);
            }
            f.emit(Instr::Ret);
        });
        let m = b.finish();
        tal::verify_module(&m, &tal::NoAmbientTypes).expect("verifies");
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&m).unwrap();
        let expect: i64 = vals.iter().sum();
        prop_assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(expect));
    }
}

// ======================= pretty-printer fixed point =======================

fn ident() -> impl Strategy<Value = String> {
    "[a-z]{1,6}".prop_map(|s| format!("v_{s}"))
}

fn type_ast() -> impl Strategy<Value = TypeAst> {
    let leaf = prop_oneof![
        Just(TypeAst::Int),
        Just(TypeAst::Bool),
        Just(TypeAst::Str),
        Just(TypeAst::Unit),
        ident().prop_map(TypeAst::Named),
    ];
    leaf.prop_recursive(2, 6, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|t| TypeAst::Array(Box::new(t))),
            (prop::collection::vec(inner.clone(), 0..3), inner)
                .prop_map(|(ps, r)| TypeAst::Fn(ps, Box::new(r))),
        ]
    })
}

fn literal_string() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 _.:/-]{0,12}"
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1_000_000).prop_map(move |n| Expr { line: 0, kind: ExprKind::Int(n) }),
        literal_string().prop_map(move |s| Expr { line: 0, kind: ExprKind::Str(s) }),
        any::<bool>().prop_map(move |b| Expr { line: 0, kind: ExprKind::Bool(b) }),
        Just(Expr { line: 0, kind: ExprKind::Null }),
        ident().prop_map(move |v| Expr { line: 0, kind: ExprKind::Var(v) }),
        ident().prop_map(move |v| Expr { line: 0, kind: ExprKind::FnRef(v) }),
        type_ast().prop_map(move |t| Expr { line: 0, kind: ExprKind::NewArray(t) }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        let bin = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::Rem),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Gt),
            Just(BinOp::Ge),
            Just(BinOp::And),
            Just(BinOp::Or),
        ];
        prop_oneof![
            (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], inner.clone())
                .prop_map(|(op, e)| Expr { line: 0, kind: ExprKind::Unary(op, Box::new(e)) }),
            (bin, inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr {
                line: 0,
                kind: ExprKind::Binary(op, Box::new(a), Box::new(b)),
            }),
            (ident(), prop::collection::vec(inner.clone(), 0..3)).prop_map(|(f, args)| Expr {
                line: 0,
                kind: ExprKind::Call(
                    Box::new(Expr { line: 0, kind: ExprKind::Var(f) }),
                    args,
                ),
            }),
            (inner.clone(), ident()).prop_map(|(o, f)| Expr {
                line: 0,
                kind: ExprKind::Field(Box::new(o), f),
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, i)| Expr {
                line: 0,
                kind: ExprKind::Index(Box::new(a), Box::new(i)),
            }),
            (ident(), prop::collection::vec((ident(), inner.clone()), 0..3)).prop_map(
                |(n, fs)| Expr { line: 0, kind: ExprKind::Record(n, fs) }
            ),
            prop::collection::vec(inner, 1..3)
                .prop_map(|es| Expr { line: 0, kind: ExprKind::ArrayLit(es) }),
        ]
    })
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (ident(), type_ast(), expr()).prop_map(|(name, ty, init)| Stmt {
            line: 0,
            kind: StmtKind::Var { name, ty, init },
        }),
        (ident(), expr()).prop_map(|(v, value)| Stmt {
            line: 0,
            kind: StmtKind::Assign {
                target: Expr { line: 0, kind: ExprKind::Var(v) },
                value,
            },
        }),
        expr().prop_map(|e| Stmt { line: 0, kind: StmtKind::Return(Some(e)) }),
        Just(Stmt { line: 0, kind: StmtKind::Return(None) }),
        Just(Stmt { line: 0, kind: StmtKind::Update }),
        Just(Stmt { line: 0, kind: StmtKind::Break }),
        Just(Stmt { line: 0, kind: StmtKind::Continue }),
        expr().prop_map(|e| Stmt { line: 0, kind: StmtKind::Expr(e) }),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            (expr(), prop::collection::vec(inner.clone(), 0..3), prop::collection::vec(inner.clone(), 0..2))
                .prop_map(|(cond, then, els)| Stmt {
                    line: 0,
                    kind: StmtKind::If { cond, then, els },
                }),
            (expr(), prop::collection::vec(inner, 0..3)).prop_map(|(cond, body)| Stmt {
                line: 0,
                kind: StmtKind::While { cond, body },
            }),
        ]
    })
}

fn program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec((ident(), prop::collection::vec((ident(), type_ast()), 0..4)), 0..2),
        prop::collection::vec(
            (ident(), prop::collection::vec((ident(), type_ast()), 0..3), type_ast(),
             prop::collection::vec(stmt(), 0..5)),
            0..3,
        ),
    )
        .prop_map(|(structs, funs)| {
            let mut items = Vec::new();
            for (name, fields) in structs {
                items.push(popcorn::ast::Item::Struct(popcorn::ast::StructDef {
                    name,
                    fields,
                    line: 0,
                }));
            }
            for (name, params, ret, body) in funs {
                items.push(popcorn::ast::Item::Fun(popcorn::ast::FunDef {
                    name,
                    params,
                    ret,
                    body,
                    line: 0,
                }));
            }
            Program { items }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// pretty ∘ parse is a fixed point of pretty — the canonical-form
    /// assumption the patch generator's diff relies on.
    #[test]
    fn pretty_print_is_a_fixed_point(p in program()) {
        let text1 = popcorn::pretty::program(&p);
        let reparsed = popcorn::parse(&text1)
            .unwrap_or_else(|e| panic!("pretty output must parse: {e}\n---\n{text1}"));
        let text2 = popcorn::pretty::program(&reparsed);
        prop_assert_eq!(text1, text2);
    }
}

// ===================== patch generation round trip =====================

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For a generated family of struct-growth changes, the synthesised
    /// state transformer preserves all carried fields over any live
    /// population.
    #[test]
    fn patchgen_struct_growth_preserves_state(
        n in 0usize..40,
        extra in prop::collection::vec(
            ("[a-z]{1,5}", prop_oneof![Just("int"), Just("bool"), Just("string")]),
            1..4,
        ),
    ) {
        // Deduplicate extra field names and avoid clashing with `id`.
        let mut seen = std::collections::BTreeSet::new();
        let extras: Vec<(String, &str)> = extra
            .into_iter()
            .map(|(name, ty)| (format!("f_{name}"), ty))
            .filter(|(name, _)| seen.insert(name.clone()))
            .collect();

        let v1 = r#"
            struct rec { id: int }
            global data: [rec] = new [rec];
            fun fill(n: int): int {
                var i: int = 0;
                while (i < n) { push(data, rec { id: i * 3 }); i = i + 1; }
                return len(data);
            }
            fun sum(): int {
                var s: int = 0;
                var i: int = 0;
                while (i < len(data)) { s = s + data[i].id; i = i + 1; }
                return s;
            }
        "#;
        let extra_decls: Vec<String> =
            extras.iter().map(|(n, t)| format!("{n}: {t}")).collect();
        let extra_inits: Vec<String> = extras
            .iter()
            .map(|(n, t)| {
                let d = match *t {
                    "int" => "0",
                    "bool" => "false",
                    _ => "\"\"",
                };
                format!("{n}: {d}")
            })
            .collect();
        let v2 = format!(
            r#"
            struct rec {{ id: int, {decls} }}
            global data: [rec] = new [rec];
            fun fill(n: int): int {{
                var i: int = 0;
                while (i < n) {{ push(data, rec {{ id: i * 3, {inits} }}); i = i + 1; }}
                return len(data);
            }}
            fun sum(): int {{
                var s: int = 0;
                var i: int = 0;
                while (i < len(data)) {{ s = s + data[i].id; i = i + 1; }}
                return s;
            }}
            "#,
            decls = extra_decls.join(", "),
            inits = extra_inits.join(", "),
        );

        let gen = dsu_core::PatchGen::new().generate(v1, &v2, "v1", "v2").unwrap();
        prop_assert_eq!(gen.stats.types_changed, 1);
        prop_assert_eq!(gen.stats.transformers_auto, 1);

        let m = popcorn::compile(v1, "app", "v1", &popcorn::Interface::new()).unwrap();
        let mut p = Process::new(LinkMode::Updateable);
        p.load_module(&m).unwrap();
        p.call("fill", vec![Value::Int(n as i64)]).unwrap();
        let before = p.call("sum", vec![]).unwrap();
        dsu_core::apply_patch(&mut p, &gen.patch, dsu_core::UpdatePolicy::default()).unwrap();
        prop_assert_eq!(p.call("sum", vec![]).unwrap(), before);
    }
}

// ============================ workload sampler ============================

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn zipf_samples_in_range_and_deterministic(
        n in 1usize..200,
        alpha in 0.0f64..2.0,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let z = flashed::Zipf::new(n, alpha);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(seed);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let a = z.sample(&mut r1);
            let b = z.sample(&mut r2);
            prop_assert!(a < n);
            prop_assert_eq!(a, b);
        }
    }
}

// =========================== optimizer soundness ===========================

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Folding random integer expression chains preserves the result.
    #[test]
    fn optimizer_preserves_straightline_arithmetic(
        ops in prop::collection::vec((0u8..6, 1i64..50), 1..24),
        start in 0i64..1000,
    ) {
        let mut b = ModuleBuilder::new("o", "v1");
        b.function("f", FnSig::new(vec![], Ty::Int), |f| {
            f.emit(Instr::PushInt(start));
            for (op, v) in &ops {
                f.emit(Instr::PushInt(*v));
                f.emit(match op % 6 {
                    0 => Instr::Add,
                    1 => Instr::Sub,
                    2 => Instr::Mul,
                    3 => Instr::Div,
                    4 => Instr::Rem,
                    _ => Instr::Add,
                });
            }
            f.emit(Instr::Ret);
        });
        let plain = b.finish();
        let mut opt = plain.clone();
        let stats = tal::opt::optimize_module(&mut opt);
        tal::verify_module(&opt, &tal::NoAmbientTypes).expect("optimised verifies");
        // Everything here is constant, so the whole chain must fold away.
        prop_assert!(opt.function("f").unwrap().code.len() <= 2, "{stats:?}");

        let mut p1 = Process::new(LinkMode::Static);
        p1.load_module(&plain).unwrap();
        let mut p2 = Process::new(LinkMode::Static);
        p2.load_module(&opt).unwrap();
        prop_assert_eq!(p1.call("f", vec![]).unwrap(), p2.call("f", vec![]).unwrap());
    }

    /// The optimizer never breaks verification or changes behaviour on
    /// arbitrary *verified* fuzz programs.
    #[test]
    fn optimizer_sound_on_fuzzed_verified_code(tpls in prop::collection::vec(tpl(), 1..48)) {
        let mut b = ModuleBuilder::new("fuzz", "v1");
        b.def_type(TypeDef::new(
            "t",
            vec![Field::new("a", Ty::Int), Field::new("b", Ty::Str)],
        ));
        let tr = b.type_ref("t");
        let s = b.string("seed");
        let len = tpls.len() + 1;
        b.function("f", FnSig::new(vec![], Ty::Int), |f| {
            f.local(Ty::Int);
            f.local(Ty::Bool);
            f.local(Ty::Str);
            f.local(Ty::named("t"));
            for (i, t) in tpls.iter().enumerate() {
                f.emit(materialize(i, len, t, tr, s));
            }
            f.emit(Instr::Ret);
        });
        let plain = b.finish();
        if tal::verify_module(&plain, &tal::NoAmbientTypes).is_ok() {
            let mut opt = plain.clone();
            tal::opt::optimize_module(&mut opt);
            tal::verify_module(&opt, &tal::NoAmbientTypes)
                .expect("optimisation must preserve verifiability");
            let mut p1 = Process::new(LinkMode::Static);
            p1.load_module(&plain).unwrap();
            let mut p2 = Process::new(LinkMode::Static);
            p2.load_module(&opt).unwrap();
            let r1 = p1.call("f", vec![]);
            let r2 = p2.call("f", vec![]);
            prop_assert_eq!(r1, r2, "optimised behaviour diverged");
        }
    }
}

// ======================= text format round trip =======================

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `tal::text::parse(emit(m)) == m` for arbitrary (even ill-typed)
    /// modules built from the fuzz instruction pool — the format is a
    /// faithful carrier, independent of verification.
    #[test]
    fn tal_text_round_trips_fuzzed_modules(tpls in prop::collection::vec(tpl(), 1..40)) {
        let mut b = ModuleBuilder::new("fz", "v9");
        b.def_type(TypeDef::new(
            "t",
            vec![Field::new("a", Ty::Int), Field::new("b", Ty::Str)],
        ));
        let tr = b.type_ref("t");
        let s = b.string("seed \"quoted\"\n");
        let len = tpls.len() + 1;
        b.function("f", FnSig::new(vec![Ty::Int], Ty::Int), |f| {
            f.local(Ty::array(Ty::named("t")));
            for (i, t) in tpls.iter().enumerate() {
                f.emit(materialize(i, len, t, tr, s));
            }
            f.emit(Instr::Ret);
        });
        b.global("g", Ty::Str, vec![Instr::PushStr(s), Instr::Ret]);
        let m = b.finish();
        let text = tal::text::emit(&m);
        let back = tal::text::parse(&text)
            .unwrap_or_else(|e| panic!("emit output must parse: {e}\n---\n{text}"));
        prop_assert_eq!(m, back);
    }
}

// ============================ update soak ============================

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Soak: a long random sequence of generated patches (body tweaks and
    /// struct growth) applied to one process; after every patch the
    /// process must agree with a freshly booted build of the same source.
    #[test]
    fn soak_many_sequential_patches(deltas in prop::collection::vec((1i64..50, any::<bool>()), 4..12)) {
        let mk_src = |mult: i64, fields: usize| -> String {
            let extra_decl: Vec<String> =
                (0..fields).map(|i| format!("x{i}: int")).collect();
            let extra_init: Vec<String> =
                (0..fields).map(|i| format!("x{i}: {i}")).collect();
            let comma = if fields > 0 { ", " } else { "" };
            format!(
                r#"
                struct rec {{ id: int{comma}{decls} }}
                global data: [rec] = new [rec];
                fun add(n: int): unit {{ push(data, rec {{ id: n * {mult}{comma}{inits} }}); }}
                fun sum(): int {{
                    var s: int = 0;
                    var i: int = 0;
                    while (i < len(data)) {{ s = s + data[i].id; i = i + 1; }}
                    return s;
                }}
                "#,
                decls = extra_decl.join(", "),
                inits = extra_init.join(", "),
            )
        };

        let mut mult = 1i64;
        let mut fields = 0usize;
        let mut src = mk_src(mult, fields);
        let mut proc = {
            let m = popcorn::compile(&src, "soak", "v1", &popcorn::Interface::new()).unwrap();
            let mut p = Process::new(LinkMode::Updateable);
            p.load_module(&m).unwrap();
            p
        };
        let mut expected_sum = 0i64;
        let mut n = 0i64;

        for (i, (new_mult, grow)) in deltas.iter().enumerate() {
            // Mutate state on the current version.
            n += 1;
            proc.call("add", vec![Value::Int(n)]).unwrap();
            expected_sum += n * mult;

            // Generate and apply the next patch.
            mult = *new_mult;
            if *grow {
                fields += 1;
            }
            let next = mk_src(mult, fields);
            let gen = dsu_core::PatchGen::new()
                .generate(&src, &next, &format!("v{i}"), &format!("v{}", i + 1))
                .unwrap();
            dsu_core::apply_patch(&mut proc, &gen.patch, dsu_core::UpdatePolicy::default())
                .unwrap();
            src = next;

            // State must be exactly preserved across every patch.
            prop_assert_eq!(proc.call("sum", vec![]).unwrap(), Value::Int(expected_sum));
        }
        // Post-soak sanity: new adds use the final multiplier.
        proc.call("add", vec![Value::Int(100)]).unwrap();
        expected_sum += 100 * mult;
        prop_assert_eq!(proc.call("sum", vec![]).unwrap(), Value::Int(expected_sum));
        // And old code versions can be garbage collected without harm.
        proc.collect_code();
        prop_assert_eq!(proc.call("sum", vec![]).unwrap(), Value::Int(expected_sum));
    }
}
