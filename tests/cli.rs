//! End-to-end tests of the `dsud` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn dsud() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dsud"))
}

fn write_tmp(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsud-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let p = dir.join(name);
    std::fs::write(&p, contents).expect("write");
    p
}

const V1: &str = r#"
extern fun print(s: string): unit;
global total: int = 0;
fun step(i: int): int { total = total + i; return total; }
fun main(n: int): int {
    var i: int = 0;
    while (i < n) {
        print("t=" + itoa(step(i)));
        update;
        i = i + 1;
    }
    return total;
}
"#;

const V2: &str = r#"
extern fun print(s: string): unit;
global total: int = 0;
fun step(i: int): int { total = total + i * 100; return total; }
fun main(n: int): int {
    var i: int = 0;
    while (i < n) {
        print("t=" + itoa(step(i)));
        update;
        i = i + 1;
    }
    return total;
}
"#;

#[test]
fn check_accepts_valid_and_rejects_invalid() {
    let good = write_tmp("good.pop", V1);
    let out = dsud()
        .args(["check", good.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));

    let bad = write_tmp("bad.pop", "fun f(): int { return true; }");
    let out = dsud()
        .args(["check", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("expected int"));
}

#[test]
fn check_dis_prints_disassembly() {
    let good = write_tmp("dis.pop", V1);
    let out = dsud()
        .args(["check", good.to_str().unwrap(), "--dis"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fun main"), "{text}");
    assert!(text.contains("update.point"), "{text}");
}

#[test]
fn run_executes_and_applies_updates() {
    let v1 = write_tmp("run_v1.pop", V1);
    let v2 = write_tmp("run_v2.pop", V2);
    // Without update: 0+1+2+3 = 6.
    let out = dsud()
        .args(["run", v1.to_str().unwrap(), "--arg", "4"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).trim().ends_with("6"));

    // With the v2 patch queued: first iteration on v1 (0), then v2
    // (100, 200, 300) -> total 600.
    let out = dsud()
        .args([
            "run",
            v1.to_str().unwrap(),
            "--arg",
            "4",
            "--update",
            v2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim().ends_with("600"), "{stdout}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("applied"));
}

#[test]
fn diff_saves_patch_file_that_run_consumes() {
    let v1 = write_tmp("d_v1.pop", V1);
    let v2 = write_tmp("d_v2.pop", V2);
    let patch = write_tmp("d.dpatch", "");
    let out = dsud()
        .args([
            "diff",
            v1.to_str().unwrap(),
            v2.to_str().unwrap(),
            "-o",
            patch.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let contents = std::fs::read_to_string(&patch).unwrap();
    assert!(contents.starts_with("dsu-patch 1"), "{contents}");

    let out = dsud()
        .args([
            "run",
            v1.to_str().unwrap(),
            "--arg",
            "4",
            "--patch",
            patch.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).trim().ends_with("600"));
}

#[test]
fn compile_emits_parseable_object_text() {
    let v1 = write_tmp("c_v1.pop", V1);
    let out_path = write_tmp("c_v1.tal", "");
    let out = dsud()
        .args([
            "compile",
            v1.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&out_path).unwrap();
    let m = tal::text::parse(&text).expect("compiled output parses");
    assert!(m.function("main").is_some());
}

#[test]
fn size_reports_overheads() {
    let v1 = write_tmp("s_v1.pop", V1);
    let out = dsud()
        .args(["size", v1.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("updateable image"), "{text}");
}

#[test]
fn usage_on_bad_invocations() {
    let out = dsud().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = dsud().args(["run"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing program path"));

    let out = dsud().args(["run", "/no/such/file.pop"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}
