//! Integration tests spanning the whole stack:
//! popcorn → tal → verifier → vm → dsu-core → flashed.

use dsu::prelude::*;
use flashed::{parse_response, patch_stream, versions, Server, SimFs, Workload};

fn boot(src: &str) -> Process {
    let m = popcorn::compile(src, "app", "v1", &popcorn::Interface::new()).expect("compiles");
    tal::verify_module(&m, &tal::NoAmbientTypes).expect("verifies");
    let mut p = Process::new(LinkMode::Updateable);
    p.load_module(&m).expect("links");
    p
}

#[test]
fn compile_verify_run_pipeline_both_modes() {
    let src = r#"
        struct acc { total: int }
        global state: acc = acc { total: 0 };
        fun add(n: int): int {
            state.total = state.total + n;
            return state.total;
        }
    "#;
    for mode in [LinkMode::Static, LinkMode::Updateable] {
        let m = popcorn::compile(src, "app", "v1", &popcorn::Interface::new()).unwrap();
        let mut p = Process::new(mode);
        p.load_module(&m).unwrap();
        assert_eq!(p.call("add", vec![Value::Int(3)]).unwrap(), Value::Int(3));
        assert_eq!(p.call("add", vec![Value::Int(4)]).unwrap(), Value::Int(7));
    }
}

#[test]
fn sequential_patches_compose() {
    // v1 -> v2 (body change) -> v3 (signature change with caller update).
    let mut p = boot(
        r#"
        fun scale(x: int): int { return x * 2; }
        fun run(x: int): int { return scale(x); }
        "#,
    );
    let p2 = compile_patch(
        "fun scale(x: int): int { return x * 3; }",
        "v1",
        "v2",
        &interface_of(&p),
        Manifest {
            replaces: vec!["scale".into()],
            ..Manifest::default()
        },
    )
    .unwrap();
    apply_patch(&mut p, &p2, UpdatePolicy::default()).unwrap();
    assert_eq!(p.call("run", vec![Value::Int(5)]).unwrap(), Value::Int(15));

    let p3 = compile_patch(
        r#"
        fun scale(x: int, f: int): int { return x * f; }
        fun run(x: int): int { return scale(x, 10); }
        "#,
        "v2",
        "v3",
        &interface_of(&p),
        Manifest {
            replaces: vec!["scale".into(), "run".into()],
            ..Manifest::default()
        },
    )
    .unwrap();
    apply_patch(&mut p, &p3, UpdatePolicy::default()).unwrap();
    assert_eq!(p.call("run", vec![Value::Int(5)]).unwrap(), Value::Int(50));
}

#[test]
fn multiple_patches_apply_at_one_update_point() {
    let mut p = boot(
        r#"
        fun tick(): int { return 1; }
        fun spin(n: int): int {
            var acc: int = 0;
            var i: int = 0;
            while (i < n) {
                acc = acc + tick();
                update;
                i = i + 1;
            }
            return acc;
        }
        "#,
    );
    let mut up = Updater::new();
    let patch_a = compile_patch(
        "fun tick(): int { return 10; }",
        "v1",
        "v2",
        &interface_of(&p),
        Manifest {
            replaces: vec!["tick".into()],
            ..Manifest::default()
        },
    )
    .unwrap();
    // Patch B compiles against the interface as of v2 (same sigs here).
    let patch_b = compile_patch(
        "fun tick(): int { return 100; }",
        "v2",
        "v3",
        &interface_of(&p),
        Manifest {
            replaces: vec!["tick".into()],
            ..Manifest::default()
        },
    )
    .unwrap();
    up.enqueue(&mut p, patch_a);
    up.enqueue(&mut p, patch_b);
    // First iteration runs v1's tick; both patches land at the first
    // update point; the remaining two iterations run v3's tick.
    assert_eq!(
        up.run(&mut p, "spin", vec![Value::Int(3)]).unwrap(),
        Value::Int(201)
    );
    assert_eq!(up.log().len(), 2);
}

#[test]
fn strict_updater_surfaces_failed_patches() {
    let mut p = boot("fun work(): int { update; return 1; }");
    // Malformed manifest: claims to replace a function it does not define.
    let bad = compile_patch(
        "fun other(): int { return 2; }",
        "v1",
        "v2",
        &interface_of(&p),
        Manifest {
            replaces: vec!["work".into()],
            adds: vec!["other".into()],
            ..Manifest::default()
        },
    )
    .unwrap();
    let mut up = Updater::new();
    up.enqueue(&mut p, bad);
    let e = up.run(&mut p, "work", vec![]).unwrap_err();
    assert!(matches!(e, dsu::core::RunError::Update(_)), "{e}");
    // The process is intact and runnable after the failure.
    assert!(!p.is_suspended());
    assert_eq!(up.run(&mut p, "work", vec![]).unwrap(), Value::Int(1));
}

#[test]
fn non_strict_updater_continues_on_old_version() {
    let mut p = boot("fun work(): int { update; return 1; }");
    let bad = compile_patch(
        "fun other(): int { return 2; }",
        "v1",
        "v2",
        &interface_of(&p),
        Manifest {
            replaces: vec!["work".into()],
            adds: vec!["other".into()],
            ..Manifest::default()
        },
    )
    .unwrap();
    let mut up = Updater::new();
    up.strict = false;
    up.enqueue(&mut p, bad);
    assert_eq!(up.run(&mut p, "work", vec![]).unwrap(), Value::Int(1));
    assert_eq!(up.failures().len(), 1);
    assert_eq!(up.log().len(), 0);
}

#[test]
fn flashed_stream_then_rollback_to_every_version() {
    let fs = SimFs::generate_fixed(8, 256, 1);
    let mut wl = Workload::new(fs.paths(), 1.0, 2);
    let mut server = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs).unwrap();
    let mut history = VersionManager::new();

    for gen in patch_stream().unwrap() {
        history.record(server.process(), gen.patch.from_version.clone());
        server.push_requests(wl.batch(20));
        server.queue_patch(gen.patch);
        server.serve().unwrap();
    }
    assert_eq!(history.versions(), vec!["v1", "v2", "v3", "v4"]);

    // Roll all the way back to v1 and verify v1 behaviour (no
    // Content-Type header).
    assert!(history.rollback_to(server.process_mut(), "v1"));
    server.push_requests(wl.batch(5));
    server.serve().unwrap();
    let last = server.completions().pop().unwrap();
    let resp = parse_response(&last.response).unwrap();
    assert_eq!(resp.status, 200);
    assert!(
        resp.header("content-type").is_none(),
        "v1 has no content-type"
    );
}

#[test]
fn state_identity_patched_vs_fresh() {
    // Behavioural equivalence: a v1 process patched to v2 must answer
    // future requests exactly like a fresh v2 process whose state was
    // built the same way.
    let v1 = r#"
        struct item { k: string, n: int }
        global items: [item] = new [item];
        fun add(k: string, n: int): unit { push(items, item { k: k, n: n }); }
        fun sum(): int {
            var s: int = 0;
            var i: int = 0;
            while (i < len(items)) { s = s + items[i].n; i = i + 1; }
            return s;
        }
    "#;
    let v2 = r#"
        struct item { k: string, n: int, flag: bool }
        global items: [item] = new [item];
        fun add(k: string, n: int): unit { push(items, item { k: k, n: n, flag: false }); }
        fun sum(): int {
            var s: int = 0;
            var i: int = 0;
            while (i < len(items)) {
                if (!items[i].flag) { s = s + items[i].n; }
                i = i + 1;
            }
            return s;
        }
    "#;
    let gen = PatchGen::new().generate(v1, v2, "v1", "v2").unwrap();

    // Patched world.
    let mut patched = boot(v1);
    for i in 0..10 {
        patched
            .call("add", vec![Value::str(format!("k{i}")), Value::Int(i)])
            .unwrap();
    }
    apply_patch(&mut patched, &gen.patch, UpdatePolicy::default()).unwrap();
    for i in 10..15 {
        patched
            .call("add", vec![Value::str(format!("k{i}")), Value::Int(i)])
            .unwrap();
    }

    // Fresh v2 world with the same logical history.
    let m2 = popcorn::compile(v2, "app", "v2", &popcorn::Interface::new()).unwrap();
    let mut fresh = Process::new(LinkMode::Updateable);
    fresh.load_module(&m2).unwrap();
    for i in 0..15 {
        fresh
            .call("add", vec![Value::str(format!("k{i}")), Value::Int(i)])
            .unwrap();
    }

    assert_eq!(
        patched.call("sum", vec![]).unwrap(),
        fresh.call("sum", vec![]).unwrap(),
        "patched process must be observationally equivalent to fresh v2"
    );
}

#[test]
fn heap_accounting_reflects_transformed_state() {
    let v1 = r#"
        struct rec { id: int }
        global data: [rec] = new [rec];
        fun fill(n: int): int {
            var i: int = 0;
            while (i < n) { push(data, rec { id: i }); i = i + 1; }
            return len(data);
        }
    "#;
    let v2 = r#"
        struct rec { id: int, note: string }
        global data: [rec] = new [rec];
        fun fill(n: int): int {
            var i: int = 0;
            while (i < n) { push(data, rec { id: i, note: "" }); i = i + 1; }
            return len(data);
        }
    "#;
    let gen = PatchGen::new().generate(v1, v2, "v1", "v2").unwrap();
    let mut p = boot(v1);
    p.call("fill", vec![Value::Int(1000)]).unwrap();
    let report = apply_patch(&mut p, &gen.patch, UpdatePolicy::default()).unwrap();
    // Records grew by one field each: heap after > heap before.
    assert!(
        report.heap_after > report.heap_before,
        "before {} after {}",
        report.heap_before,
        report.heap_after
    );
}

#[test]
fn tal_text_round_trips_every_real_module() {
    // The text object-code format must round-trip everything the compiler
    // produces: all FlashEd versions and every generated patch module.
    for (name, src) in versions::all() {
        let m = popcorn::compile(&src, "flashed", name, &popcorn::Interface::new()).unwrap();
        let text = tal::text::emit(&m);
        let back = tal::text::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(m, back, "{name}");
    }
    for gen in patch_stream().unwrap() {
        let text = tal::text::emit(&gen.patch.module);
        let back = tal::text::parse(&text).unwrap();
        assert_eq!(gen.patch.module, back);
    }
}

#[test]
fn patch_files_round_trip_and_apply() {
    let fs = SimFs::generate_fixed(8, 256, 1);
    let mut wl = Workload::new(fs.paths(), 1.0, 2);
    let mut server = Server::start(LinkMode::Updateable, &versions::v3(), "v3", fs).unwrap();
    server.push_requests(wl.batch(40));
    server.serve().unwrap();

    // Serialise the type-changing patch to its file form and back.
    let gen = PatchGen::new()
        .generate(&versions::v3(), &versions::v4(), "v3", "v4")
        .unwrap();
    let file = dsu::core::save_patch(&gen.patch);
    let loaded = dsu::core::load_patch(&file).unwrap();
    assert_eq!(loaded, gen.patch);

    // The loaded patch applies and transforms state like the original.
    server.queue_patch(loaded);
    server.apply_pending_now().unwrap();
    assert_eq!(server.updater.log()[0].globals_transformed, 1);
    let hits = server
        .process_mut()
        .call("cache_hits_total", vec![])
        .unwrap();
    assert_eq!(hits, Value::Int(0));
}

#[test]
fn optimizer_preserves_kernel_and_server_semantics() {
    // Every kernel and FlashEd version must behave identically when
    // compiled with the peephole optimiser.
    let src = r#"
        fun fib(n: int): int {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fun constfold(): int { return 2 * 3 + 10 / 2 - (1 + 1); }
        fun branches(x: int): int {
            if (true) { x = x + 1; }
            if (1 > 2) { x = x + 1000; }
            while (false) { x = x + 1000000; }
            return x;
        }
    "#;
    let plain = popcorn::compile(src, "t", "v1", &popcorn::Interface::new()).unwrap();
    let (opt, stats) = popcorn::compile_opt(src, "t", "v1", &popcorn::Interface::new()).unwrap();
    assert!(stats.after < stats.before, "{stats:?}");
    tal::verify_module(&opt, &tal::NoAmbientTypes).unwrap();

    let mut p1 = Process::new(LinkMode::Updateable);
    p1.load_module(&plain).unwrap();
    let mut p2 = Process::new(LinkMode::Updateable);
    p2.load_module(&opt).unwrap();
    for n in [0i64, 1, 7, 15] {
        assert_eq!(
            p1.call("fib", vec![Value::Int(n)]).unwrap(),
            p2.call("fib", vec![Value::Int(n)]).unwrap()
        );
        assert_eq!(
            p1.call("branches", vec![Value::Int(n)]).unwrap(),
            p2.call("branches", vec![Value::Int(n)]).unwrap()
        );
    }
    assert_eq!(p2.call("constfold", vec![]).unwrap(), Value::Int(9));
    // The optimised process executed fewer instructions for the same work.
    assert!(
        p2.stats.instrs < p1.stats.instrs,
        "{} vs {}",
        p2.stats.instrs,
        p1.stats.instrs
    );

    for (name, vsrc) in versions::all() {
        let (opt, _) =
            popcorn::compile_opt(&vsrc, "flashed", name, &popcorn::Interface::new()).unwrap();
        tal::verify_module(&opt, &tal::NoAmbientTypes).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn code_gc_collects_superseded_versions_only() {
    let mut p = boot(
        r#"
        fun helper(): int { return 1; }
        fun f(): int { return helper(); }
        "#,
    );
    // Three successive replacements of `helper`.
    for (i, body) in ["return 2;", "return 3;", "return 4;"].iter().enumerate() {
        let patch = compile_patch(
            &format!("fun helper(): int {{ {body} }}"),
            &format!("v{}", i + 1),
            &format!("v{}", i + 2),
            &interface_of(&p),
            Manifest {
                replaces: vec!["helper".into()],
                ..Manifest::default()
            },
        )
        .unwrap();
        apply_patch(&mut p, &patch, UpdatePolicy::default()).unwrap();
    }
    assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(4));
    assert_eq!(p.code_store_len(), 5, "v1 helper+f plus three replacements");

    let (collected, retained) = p.collect_code();
    assert_eq!(collected, 3, "the three superseded helpers");
    assert_eq!(retained, 2);
    // The live world is untouched.
    assert_eq!(p.call("f", vec![]).unwrap(), Value::Int(4));

    // A second collection finds nothing new.
    let (collected, _) = p.collect_code();
    assert_eq!(collected, 0);
}

#[test]
fn code_gc_keeps_functions_held_as_values() {
    // A function value stored in global state pins its (direct-mode)
    // target; under updateable linking values hold slots, which pin
    // whatever the slot currently targets.
    let mut p = boot(
        r#"
        global handler: fn(int): int = &first;
        fun first(x: int): int { return x + 1; }
        fun call_it(x: int): int {
            var h: fn(int): int = handler;
            return h(x);
        }
        "#,
    );
    let patch = compile_patch(
        "fun first(x: int): int { return x + 100; }",
        "v1",
        "v2",
        &interface_of(&p),
        Manifest {
            replaces: vec!["first".into()],
            ..Manifest::default()
        },
    )
    .unwrap();
    apply_patch(&mut p, &patch, UpdatePolicy::default()).unwrap();
    let (collected, _) = p.collect_code();
    assert_eq!(collected, 1, "old `first` unreachable through the slot");
    assert_eq!(
        p.call("call_it", vec![Value::Int(1)]).unwrap(),
        Value::Int(101)
    );
}
