//! `dsud` — the dynamic software updating driver.
//!
//! A small operator tool over the library, in the spirit of the paper's
//! command-line tooling:
//!
//! ```text
//! dsud check <prog.pop> [--dis]          compile + verify (+ disassemble)
//! dsud compile <prog.pop> -o <out.tal>   emit textual object code
//! dsud run <prog.pop> [--entry f] [--arg N]
//!          [--update <next.pop>]...      live-update through version files
//!          [--patch <file.dpatch>]...    or through pre-built patch files
//! dsud diff <old.pop> <new.pop> [-o <file.dpatch>]
//!                                        generate (and optionally save) a patch
//! dsud size <prog.pop>                   static vs updateable image size
//! ```
//!
//! Programs get two host functions: `print(string): unit` and
//! `now_ms(): int`.

use std::process::ExitCode;
use std::time::Instant;

use dsu::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("size") => cmd_size(&args[1..]),
        _ => {
            eprintln!(
                "usage: dsud check <prog.pop> [--dis]\n\
                 \x20      dsud compile <prog.pop> -o <out.tal>\n\
                 \x20      dsud run <prog.pop> [--entry f] [--arg N] \
                 [--update <next.pop>]... [--patch <file.dpatch>]...\n\
                 \x20      dsud diff <old.pop> <new.pop> [-o <file.dpatch>]\n\
                 \x20      dsud size <prog.pop>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dsud: {e}");
            ExitCode::FAILURE
        }
    }
}

type Anyhow = Box<dyn std::error::Error>;

fn read(path: &str) -> Result<String, Anyhow> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}").into())
}

fn compile(path: &str, version: &str) -> Result<tal::Module, Anyhow> {
    let src = read(path)?;
    let m = popcorn::compile(&src, path, version, &popcorn::Interface::new())?;
    tal::verify_module(&m, &tal::NoAmbientTypes)?;
    Ok(m)
}

fn cmd_check(args: &[String]) -> Result<(), Anyhow> {
    let path = args.first().ok_or("check: missing program path")?;
    let m = compile(path, "v1")?;
    println!(
        "{path}: OK — {} functions, {} globals, {} types, {} symbols",
        m.functions.len(),
        m.globals.len(),
        m.types.len(),
        m.symbols.len()
    );
    if args.iter().any(|a| a == "--dis") {
        print!("{m}");
    }
    Ok(())
}

fn boot(path: &str) -> Result<Process, Anyhow> {
    let src = read(path)?;
    let module = popcorn::compile(&src, path, "v1", &popcorn::Interface::new())?;
    let mut proc = Process::new(LinkMode::Updateable);
    let t0 = Instant::now();
    proc.register_host(
        "print",
        tal::FnSig::new(vec![tal::Ty::Str], tal::Ty::Unit),
        Box::new(|args| {
            println!("{}", args[0].as_str());
            Ok(Value::Unit)
        }),
    );
    proc.register_host(
        "now_ms",
        tal::FnSig::new(vec![], tal::Ty::Int),
        Box::new(move |_| Ok(Value::Int(t0.elapsed().as_millis() as i64))),
    );
    proc.load_module(&module)?;
    Ok(proc)
}

fn cmd_run(args: &[String]) -> Result<(), Anyhow> {
    let path = args.first().ok_or("run: missing program path")?;
    let mut entry = "main".to_string();
    let mut call_args: Vec<Value> = Vec::new();
    let mut updates: Vec<String> = Vec::new();
    let mut patches: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--entry" => {
                entry = args.get(i + 1).ok_or("--entry needs a value")?.clone();
                i += 2;
            }
            "--arg" => {
                let raw = args.get(i + 1).ok_or("--arg needs a value")?;
                call_args.push(Value::Int(
                    raw.parse::<i64>().map_err(|_| "--arg must be an integer")?,
                ));
                i += 2;
            }
            "--update" => {
                updates.push(args.get(i + 1).ok_or("--update needs a path")?.clone());
                i += 2;
            }
            "--patch" => {
                patches.push(args.get(i + 1).ok_or("--patch needs a path")?.clone());
                i += 2;
            }
            other => return Err(format!("run: unknown flag `{other}`").into()),
        }
    }

    let mut proc = boot(path)?;
    let mut updater = Updater::new();

    // Pre-built patch files are queued first, in the order given.
    for ppath in &patches {
        let patch = dsu::core::load_patch(&read(ppath)?)?;
        eprintln!(
            "dsud: queued patch file {ppath} ({} -> {})",
            patch.from_version, patch.to_version
        );
        updater.enqueue(&mut proc, patch);
    }

    // Generate and queue a patch per successive version; they apply in
    // order at the program's `update;` points.
    let mut prev_src = read(path)?;
    let mut prev_name = path.clone();
    for (n, upath) in updates.iter().enumerate() {
        let next_src = read(upath)?;
        let gen = PatchGen::new().generate(
            &prev_src,
            &next_src,
            &format!("v{}", n + 1),
            &format!("v{}", n + 2),
        )?;
        eprintln!(
            "dsud: queued {prev_name} -> {upath} ({} replaced, {} added, {} transformers)",
            gen.patch.manifest.replaces.len(),
            gen.patch.manifest.adds.len(),
            gen.patch.manifest.transformers.len()
        );
        updater.enqueue(&mut proc, gen.patch);
        prev_src = next_src;
        prev_name = upath.clone();
    }

    let out = updater.run(&mut proc, &entry, call_args)?;
    for report in updater.log() {
        eprintln!("dsud: applied {report}");
    }
    println!("{out}");
    Ok(())
}

fn cmd_compile(args: &[String]) -> Result<(), Anyhow> {
    let path = args.first().ok_or("compile: missing program path")?;
    let out = match (args.get(1).map(String::as_str), args.get(2)) {
        (Some("-o"), Some(out)) => out.clone(),
        _ => format!("{path}.tal"),
    };
    let m = compile(path, "v1")?;
    std::fs::write(&out, tal::text::emit(&m))?;
    eprintln!("dsud: wrote {out}");
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), Anyhow> {
    let old = args.first().ok_or("diff: missing old path")?;
    let new = args.get(1).ok_or("diff: missing new path")?;
    let gen = PatchGen::new().generate(&read(old)?, &read(new)?, "old", "new")?;
    if let (Some(flag), Some(out)) = (args.get(2), args.get(3)) {
        if flag == "-o" {
            std::fs::write(out, dsu::core::save_patch(&gen.patch))?;
            eprintln!("dsud: wrote {out}");
            return Ok(());
        }
    }
    println!("# stats: {:?}", gen.stats);
    println!("# manifest: {:#?}", gen.patch.manifest);
    println!("# --- composed patch source ---");
    print!("{}", gen.source);
    Ok(())
}

fn cmd_size(args: &[String]) -> Result<(), Anyhow> {
    let path = args.first().ok_or("size: missing program path")?;
    let m = compile(path, "v1")?;
    let r = m.size_report();
    println!(
        "{path}: code {}B, symbols {}B, strings {}B, types {}B\n\
         static image {}B, updateable image {}B (+{:.1}%)",
        r.code_bytes,
        r.symbol_bytes,
        r.string_bytes,
        r.type_bytes,
        r.static_total(),
        r.updateable_total(),
        r.overhead_percent()
    );
    Ok(())
}
