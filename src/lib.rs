//! # dsu — Dynamic Software Updating (PLDI 2001) in Rust
//!
//! Facade crate re-exporting the whole reproduction:
//!
//! * [`tal`] — typed, relinkable bytecode with a verifier (the TAL
//!   analogue: verifiable object code for programs and patches);
//! * [`popcorn`] — the guest language (a safe C dialect with `update;`
//!   points) compiling to `tal`;
//! * [`vm`] — the interpreter with *static* and *updateable*
//!   (indirection-table) link modes;
//! * [`dsu_core`] (re-exported as `core`) — the paper's contribution: dynamic patches,
//!   verification, update-safety analysis, atomic rebinding, state
//!   transformers, patch generation, rollback;
//! * [`flashed`] — the FlashEd web-server case study and its patch
//!   stream.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! ```
//! use dsu::prelude::*;
//!
//! let v1 = popcorn::compile(
//!     "fun answer(): int { return 41; }",
//!     "app", "v1", &popcorn::Interface::new())?;
//! let mut proc = Process::new(LinkMode::Updateable);
//! proc.load_module(&v1)?;
//!
//! let patch = compile_patch(
//!     "fun answer(): int { return 42; }",
//!     "v1", "v2", &interface_of(&proc),
//!     Manifest { replaces: vec!["answer".into()], ..Manifest::default() })?;
//! apply_patch(&mut proc, &patch, UpdatePolicy::default())?;
//! assert_eq!(proc.call("answer", vec![])?, Value::Int(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use dsu_core as core;
pub use flashed;
pub use popcorn;
pub use tal;
pub use vm;

/// The common imports for writing updateable programs and patches.
pub mod prelude {
    pub use dsu_core::{
        apply_patch, compile_patch, interface_of, Manifest, Patch, PatchGen, Transformer,
        TypeAlias, UpdateError, UpdatePolicy, UpdateReport, Updater, VersionManager,
    };
    pub use vm::{LinkMode, Outcome, Process, Value};
}
