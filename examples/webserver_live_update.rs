//! FlashEd: push an updateable web server through its development history
//! while it serves traffic — the paper's headline case study.
//!
//! Run with: `cargo run --release --example webserver_live_update`

use dsu::flashed::{parse_response, patch_stream, versions, Server, SimFs, Workload};
use vm::LinkMode;

const BATCH: usize = 400;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = SimFs::generate(64, (256, 4096), 42);
    let mut wl = Workload::new(fs.paths(), 1.0, 7).with_miss_rate(0.02);
    let mut server = Server::start(LinkMode::Updateable, &versions::v1(), "v1", fs)?;

    println!("serving {BATCH} requests per version; patches apply mid-batch\n");

    let stream = patch_stream()?;
    let labels = [
        "v1->v2",
        "v2->v3",
        "v3->v4 (type change)",
        "v4->v5 (bugfix)",
    ];

    // Warm batch on v1.
    serve_batch(&mut server, &mut wl, "v1")?;

    for (gen, label) in stream.into_iter().zip(labels) {
        // Queue the patch, then serve: it applies at the first guest
        // `update;` point inside the batch.
        server.push_requests(wl.batch(BATCH));
        server.queue_patch(gen.patch);
        let t = std::time::Instant::now();
        server.serve()?;
        let elapsed = t.elapsed();
        let report = server.updater.log().last().expect("applied").clone();
        println!(
            "{label:24} pause {:>9.3?} (verify {:?}, link {:?}, bind {:?}, xform {:?}); batch {:?}",
            report.timings.total(),
            report.timings.verify,
            report.timings.link,
            report.timings.bind,
            report.timings.transform,
            elapsed,
        );
    }

    // Final validation batch on v5.
    serve_batch(&mut server, &mut wl, "v5")?;

    let completions = server.completions();
    let ok = completions
        .iter()
        .filter(|c| {
            parse_response(&c.response)
                .map(|r| r.status == 200)
                .unwrap_or(false)
        })
        .count();
    println!(
        "\nserved {} requests across 5 versions, {} OK, {} logged by v5, cache hits {}",
        completions.len(),
        ok,
        server.logs().len(),
        server.process_mut().call("cache_hits_total", vec![])?,
    );
    Ok(())
}

fn serve_batch(
    server: &mut Server,
    wl: &mut Workload,
    label: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    server.push_requests(wl.batch(BATCH));
    let t = std::time::Instant::now();
    let served = server.serve()?;
    let dt = t.elapsed();
    println!(
        "{label:24} {served} requests in {dt:?} ({:.0} req/s)",
        served as f64 / dt.as_secs_f64()
    );
    Ok(())
}
