//! Quickstart: dynamically update a running program without stopping it.
//!
//! Run with: `cargo run --example quickstart`

use dsu::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An "updateable" program: compiled once, linked so that every call
    //    goes through the dynamic linker's indirection table.
    let v1 = popcorn::compile(
        r#"
        global count: int = 0;
        fun step(): int {
            count = count + 1;
            return count;
        }
        fun describe(): string {
            return "counter at " + itoa(count);
        }
        "#,
        "counter",
        "v1",
        &popcorn::Interface::new(),
    )?;
    let mut proc = Process::new(LinkMode::Updateable);
    proc.load_module(&v1)?;

    // 2. Run it for a while; it accumulates state.
    for _ in 0..5 {
        proc.call("step", vec![])?;
    }
    println!("before update: {}", proc.call("describe", vec![])?);

    // 3. Build a dynamic patch: `step` now counts by 10, and `describe`
    //    is more verbose. The patch compiles against the *running
    //    process's* interface and is verified before linking.
    let patch = compile_patch(
        r#"
        fun step(): int {
            count = count + 10;
            return count;
        }
        fun describe(): string {
            return "v2 counter at " + itoa(count);
        }
        "#,
        "v1",
        "v2",
        &interface_of(&proc),
        Manifest {
            replaces: vec!["step".into(), "describe".into()],
            ..Manifest::default()
        },
    )?;

    // 4. Apply it. State (count = 5) survives; behaviour changes.
    let report = apply_patch(&mut proc, &patch, UpdatePolicy::default())?;
    println!("update applied: {report}");

    proc.call("step", vec![])?;
    println!("after update:  {}", proc.call("describe", vec![])?);
    assert_eq!(proc.global_value("count"), Some(Value::Int(15)));

    Ok(())
}
