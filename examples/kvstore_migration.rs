//! A key-value store whose record representation is migrated live, with a
//! hand-written state transformer, and then rolled back.
//!
//! Shows the parts the paper leaves to the programmer: a manual
//! transformer for a non-mechanical change (splitting one field into two)
//! and undoing a bad update.
//!
//! Run with: `cargo run --example kvstore_migration`

use dsu::prelude::*;

const V1: &str = r#"
struct kv { key: string, value: string }

global store: [kv] = new [kv];

fun put(k: string, v: string): unit {
    var i: int = 0;
    while (i < len(store)) {
        if (store[i].key == k) { store[i].value = v; return; }
        i = i + 1;
    }
    push(store, kv { key: k, value: v });
}

fun get(k: string): string {
    var i: int = 0;
    while (i < len(store)) {
        if (store[i].key == k) { return store[i].value; }
        i = i + 1;
    }
    return "";
}

fun size(): int { return len(store); }
"#;

/// v2 splits `value` into a payload plus a version stamp — not a
/// mechanical field addition, so the patch generator requires a manual
/// transformer.
const V2: &str = r#"
struct kv { key: string, payload: string, revision: int }

global store: [kv] = new [kv];

fun put(k: string, v: string): unit {
    var i: int = 0;
    while (i < len(store)) {
        if (store[i].key == k) {
            store[i].payload = v;
            store[i].revision = store[i].revision + 1;
            return;
        }
        i = i + 1;
    }
    push(store, kv { key: k, payload: v, revision: 1 });
}

fun get(k: string): string {
    var i: int = 0;
    while (i < len(store)) {
        if (store[i].key == k) { return store[i].payload; }
        i = i + 1;
    }
    return "";
}

fun revision(k: string): int {
    var i: int = 0;
    while (i < len(store)) {
        if (store[i].key == k) { return store[i].revision; }
        i = i + 1;
    }
    return 0;
}

fun size(): int { return len(store); }
"#;

const MIGRATE_STORE: &str = r#"
fun migrate_store(old: [kv__old]): [kv] {
    var out: [kv] = new [kv];
    var i: int = 0;
    while (i < len(old)) {
        push(out, kv { key: old[i].key, payload: old[i].value, revision: 1 });
        i = i + 1;
    }
    return out;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Boot v1 and fill it with data.
    let module = popcorn::compile(V1, "kvstore", "v1", &popcorn::Interface::new())?;
    let mut proc = Process::new(LinkMode::Updateable);
    proc.load_module(&module)?;
    for (k, v) in [("lang", "rust"), ("paper", "pldi01"), ("city", "zagreb")] {
        proc.call("put", vec![Value::str(k), Value::str(v)])?;
    }
    println!(
        "v1: {} entries, get(paper) = {}",
        proc.call("size", vec![])?,
        proc.call("get", vec![Value::str("paper")])?
    );

    // Record the version for rollback, then generate the patch with the
    // hand-written transformer.
    let mut history = VersionManager::new();
    history.record(&proc, "v1");

    let gen = PatchGen::new()
        .with_manual(dsu::core::ManualTransformer {
            global: "store".into(),
            function: "migrate_store".into(),
            source: MIGRATE_STORE.into(),
        })
        .generate(V1, V2, "v1", "v2")?;
    println!(
        "\npatch v1->v2: {} changed, {} carried, {} added, {} types changed, {} transformers",
        gen.stats.functions_changed,
        gen.stats.functions_carried,
        gen.stats.functions_added,
        gen.stats.types_changed,
        gen.stats.transformers,
    );

    let report = apply_patch(&mut proc, &gen.patch, UpdatePolicy::default())?;
    println!("applied: {report}");
    println!(
        "v2: get(paper) = {}, revision(paper) = {}",
        proc.call("get", vec![Value::str("paper")])?,
        proc.call("revision", vec![Value::str("paper")])?,
    );
    proc.call("put", vec![Value::str("paper"), Value::str("toplas05")])?;
    println!(
        "after put: get(paper) = {}, revision(paper) = {}",
        proc.call("get", vec![Value::str("paper")])?,
        proc.call("revision", vec![Value::str("paper")])?,
    );

    // The operator decides v2 is bad: roll back.
    assert!(history.rollback_to(&mut proc, "v1"));
    println!(
        "\nrolled back to v1: {} entries, get(paper) = {}",
        proc.call("size", vec![])?,
        proc.call("get", vec![Value::str("paper")])?,
    );
    Ok(())
}
