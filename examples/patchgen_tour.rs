//! A tour of the patch generator: what the source diff finds, what patch
//! source it composes, and what the synthesised state transformer looks
//! like.
//!
//! Run with: `cargo run --example patchgen_tour`

use dsu::core::PatchGen;
use dsu::flashed::versions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== FlashEd patch stream through the generator ==\n");
    let all = versions::all();
    for w in all.windows(2) {
        let (from, old_src) = &w[0];
        let (to, new_src) = &w[1];
        let gen = PatchGen::new().generate(old_src, new_src, from, to)?;
        println!(
            "{from} -> {to}: {} changed, {} carried, {} added, {} removed, \
             {} types changed, {} globals added, {} transformers ({} auto), {} bytes",
            gen.stats.functions_changed,
            gen.stats.functions_carried,
            gen.stats.functions_added,
            gen.stats.functions_removed,
            gen.stats.types_changed,
            gen.stats.globals_added,
            gen.stats.transformers,
            gen.stats.transformers_auto,
            gen.patch.size_bytes(),
        );
    }

    // Show the interesting one in full: the type-changing v3 -> v4 patch.
    let gen = PatchGen::new().generate(&versions::v3(), &versions::v4(), "v3", "v4")?;
    println!("\n== composed patch source for v3 -> v4 ==\n");
    println!("{}", gen.source);
    println!("== manifest ==\n{:#?}", gen.patch.manifest);
    Ok(())
}
