//! Update points in long-running computations — the paper's discussion of
//! code that would otherwise never reach a safe point.
//!
//! A monolithic `while` loop that runs for hours can only be updated if
//! the programmer *decomposes* it so an `update;` point is crossed each
//! iteration. This example runs the same batch job both ways and shows
//! that only the decomposed form picks up a mid-run fix, while the
//! monolithic form finishes on the old (buggy) code.
//!
//! Run with: `cargo run --example batchjob_decomposition`

use dsu::prelude::*;

/// v1 of the job: processes `n` work items with a deliberate bug (item
/// checksums are truncated to 8 bits). `run_monolithic` has no update
/// point inside its loop; `run_decomposed` crosses one per iteration.
const V1: &str = r#"
    global processed: int = 0;
    global checksum: int = 0;

    fun step(i: int): unit {
        processed = processed + 1;
        checksum = (checksum + i % 256) % 1000000007;  // bug: truncates
    }

    fun run_monolithic(n: int): int {
        var i: int = 0;
        while (i < n) { step(i); i = i + 1; }
        return checksum;
    }

    fun run_decomposed(n: int): int {
        var i: int = 0;
        while (i < n) {
            step(i);
            update;
            i = i + 1;
        }
        return checksum;
    }
"#;

/// v2 fixes the checksum (no truncation).
const V2_STEP: &str = r#"
    fun step(i: int): unit {
        processed = processed + 1;
        checksum = (checksum + i) % 1000000007;
    }
"#;

const N: i64 = 2000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (label, entry) in [
        ("monolithic", "run_monolithic"),
        ("decomposed", "run_decomposed"),
    ] {
        let module = popcorn::compile(V1, "job", "v1", &popcorn::Interface::new())?;
        let mut proc = Process::new(LinkMode::Updateable);
        proc.load_module(&module)?;

        let patch = compile_patch(
            V2_STEP,
            "v1",
            "v2",
            &interface_of(&proc),
            Manifest {
                replaces: vec!["step".into()],
                ..Manifest::default()
            },
        )?;

        // Queue the fix before the job starts: it can only land at an
        // update point the job actually executes.
        let mut updater = Updater::new();
        updater.enqueue(&mut proc, patch);
        let out = updater.run(&mut proc, entry, vec![Value::Int(N)])?;
        println!(
            "{label:11} checksum {out:<10} ({} update applied mid-run)",
            updater.log().len()
        );
    }
    println!(
        "\nThe monolithic loop never crosses an update point, so the whole run\n\
         executes the buggy v1 `step` (the patch stays queued). The decomposed\n\
         loop applies the fix after its first iteration, so all but one item\n\
         are processed by the fixed code — the paper's prescription for\n\
         long-running loops."
    );
    Ok(())
}
